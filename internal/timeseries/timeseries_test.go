package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func hoursAfter(n int) time.Time { return t0.Add(time.Duration(n) * time.Hour) }

func TestNewRejectsMisaligned(t *testing.T) {
	_, err := New(t0.Add(30*time.Minute), []float64{1})
	if !errors.Is(err, ErrMisaligned) {
		t.Fatalf("err = %v, want ErrMisaligned", err)
	}
}

func TestNewCopiesValues(t *testing.T) {
	vals := []float64{1, 2, 3}
	s := MustNew(t0, vals)
	vals[0] = 99
	if s.AtIndex(0) != 1 {
		t.Fatal("New did not copy values")
	}
	got := s.Values()
	got[1] = 99
	if s.AtIndex(1) != 2 {
		t.Fatal("Values did not return a copy")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on misaligned start")
		}
	}()
	MustNew(t0.Add(time.Minute), nil)
}

func TestStartEndLen(t *testing.T) {
	s := MustNew(t0, []float64{1, 2, 3})
	if !s.Start().Equal(t0) {
		t.Errorf("Start = %v", s.Start())
	}
	if !s.End().Equal(hoursAfter(3)) {
		t.Errorf("End = %v, want %v", s.End(), hoursAfter(3))
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestAtAndIndex(t *testing.T) {
	s := MustNew(t0, []float64{10, 20, 30})
	if v, ok := s.At(hoursAfter(1)); !ok || v != 20 {
		t.Errorf("At(+1h) = (%g, %v)", v, ok)
	}
	if _, ok := s.At(hoursAfter(3)); ok {
		t.Error("At(End) should be out of range")
	}
	if _, ok := s.At(hoursAfter(-1)); ok {
		t.Error("At(before start) should be out of range")
	}
	if _, ok := s.At(t0.Add(time.Minute)); ok {
		t.Error("At(misaligned) should fail")
	}
	if got := s.Time(2); !got.Equal(hoursAfter(2)) {
		t.Errorf("Time(2) = %v", got)
	}
}

func TestAtNonUTCInput(t *testing.T) {
	s := MustNew(t0, []float64{10, 20, 30})
	// Same instant expressed in a non-UTC zone must hit the same bucket.
	est := time.FixedZone("EST", -5*3600)
	if v, ok := s.At(hoursAfter(1).In(est)); !ok || v != 20 {
		t.Errorf("At(non-UTC) = (%g, %v), want (20, true)", v, ok)
	}
}

func TestSlice(t *testing.T) {
	s := MustNew(t0, []float64{0, 1, 2, 3, 4})
	sub, err := s.Slice(hoursAfter(1), hoursAfter(4))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.AtIndex(0) != 1 || sub.AtIndex(2) != 3 {
		t.Errorf("Slice values = %v", sub.Values())
	}
	if !sub.Start().Equal(hoursAfter(1)) {
		t.Errorf("Slice start = %v", sub.Start())
	}
	if _, err := s.Slice(hoursAfter(3), hoursAfter(6)); err == nil {
		t.Error("out-of-range slice should error")
	}
	if _, err := s.Slice(hoursAfter(3), hoursAfter(3)); err == nil {
		t.Error("empty slice should error")
	}
	if _, err := s.Slice(hoursAfter(3), hoursAfter(1)); err == nil {
		t.Error("inverted slice should error")
	}
}

func TestScaleAndClone(t *testing.T) {
	s := MustNew(t0, []float64{1, 2})
	d := s.Scale(2.5)
	if d.AtIndex(0) != 2.5 || d.AtIndex(1) != 5 {
		t.Errorf("Scale = %v", d.Values())
	}
	if s.AtIndex(0) != 1 {
		t.Error("Scale mutated the receiver")
	}
	c := s.Clone()
	c.values[0] = 99
	if s.AtIndex(0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestMaxAndRenormalize(t *testing.T) {
	s := MustNew(t0, []float64{5, 50, 25})
	v, at, err := s.Max()
	if err != nil || v != 50 || !at.Equal(hoursAfter(1)) {
		t.Errorf("Max = (%g, %v, %v)", v, at, err)
	}
	n := s.Renormalize()
	if n.AtIndex(1) != 100 || n.AtIndex(0) != 10 || n.AtIndex(2) != 50 {
		t.Errorf("Renormalize = %v", n.Values())
	}
	zero := MustNew(t0, []float64{0, 0})
	rz := zero.Renormalize()
	if rz.AtIndex(0) != 0 || rz.AtIndex(1) != 0 {
		t.Error("Renormalize of zeros should stay zero")
	}
	empty := MustNew(t0, nil)
	if _, _, err := empty.Max(); !errors.Is(err, ErrEmpty) {
		t.Error("Max of empty should be ErrEmpty")
	}
}

func TestOverlapRatioRatioOfMeans(t *testing.T) {
	// prev covers hours 0..5 at true scale, next covers 3..9 at half scale.
	prev := MustNew(t0, []float64{2, 4, 6, 8, 10, 12})
	next := MustNew(hoursAfter(3), []float64{4, 5, 6, 7, 8, 9})
	// Overlap hours 3,4,5: prev (8,10,12) vs next (4,5,6) → ratio 2.
	r, err := OverlapRatio(prev, next, RatioOfMeans)
	if err != nil || math.Abs(r-2) > 1e-12 {
		t.Fatalf("ratio = (%g, %v), want 2", r, err)
	}
}

func TestOverlapRatioEstimators(t *testing.T) {
	prev := MustNew(t0, []float64{0, 2, 8})
	next := MustNew(hoursAfter(0), []float64{1, 1, 2})
	// Per-hour ratios skipping zeros: 2/1=2, 8/2=4 → mean 3, median 3.
	// Ratio of means: 10/4 = 2.5.
	if r, _ := OverlapRatio(prev, next, RatioOfMeans); math.Abs(r-2.5) > 1e-12 {
		t.Errorf("ratio-of-means = %g, want 2.5", r)
	}
	if r, _ := OverlapRatio(prev, next, MeanOfRatios); math.Abs(r-3) > 1e-12 {
		t.Errorf("mean-of-ratios = %g, want 3", r)
	}
	if r, _ := OverlapRatio(prev, next, MedianOfRatios); math.Abs(r-3) > 1e-12 {
		t.Errorf("median-of-ratios = %g, want 3", r)
	}
}

func TestOverlapRatioFallbacks(t *testing.T) {
	prev := MustNew(t0, []float64{0, 0, 0})
	next := MustNew(t0, []float64{1, 2, 3})
	for _, est := range []RatioEstimator{RatioOfMeans, MeanOfRatios, MedianOfRatios} {
		r, err := OverlapRatio(prev, next, est)
		if err != nil || r != 1 {
			t.Errorf("%v zero-overlap ratio = (%g, %v), want (1, nil)", est, r, err)
		}
	}
	disjoint := MustNew(hoursAfter(10), []float64{1})
	if _, err := OverlapRatio(prev, disjoint, RatioOfMeans); !errors.Is(err, ErrNoOverlap) {
		t.Error("disjoint series should return ErrNoOverlap")
	}
	if _, err := OverlapRatio(prev, next, RatioEstimator(42)); err == nil {
		t.Error("unknown estimator should error")
	}
}

func TestStitchExtends(t *testing.T) {
	prev := MustNew(t0, []float64{2, 4, 6, 8})
	// next overlaps hours 2,3 at half scale, then extends 2 more hours.
	next := MustNew(hoursAfter(2), []float64{3, 4, 5, 6})
	out, err := Stitch(prev, next, RatioOfMeans)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 {
		t.Fatalf("stitched len = %d, want 6", out.Len())
	}
	// Ratio = (6+8)/(3+4) = 2 → appended values 5*2, 6*2.
	want := []float64{2, 4, 6, 8, 10, 12}
	for i, w := range want {
		if math.Abs(out.AtIndex(i)-w) > 1e-12 {
			t.Fatalf("stitched = %v, want %v", out.Values(), want)
		}
	}
	// prev untouched.
	if prev.Len() != 4 {
		t.Error("Stitch mutated prev")
	}
}

func TestStitchRejectsEarlierNext(t *testing.T) {
	prev := MustNew(hoursAfter(5), []float64{1, 2})
	next := MustNew(t0, []float64{1, 2})
	if _, err := Stitch(prev, next, RatioOfMeans); !errors.Is(err, ErrOrder) {
		t.Errorf("err = %v, want ErrOrder", err)
	}
}

func TestStitchOntoEmpty(t *testing.T) {
	empty := MustNew(t0, nil)
	next := MustNew(hoursAfter(3), []float64{1, 2})
	out, err := Stitch(empty, next, RatioOfMeans)
	if err != nil || out.Len() != 2 || !out.Start().Equal(hoursAfter(3)) {
		t.Fatalf("stitch onto empty = (%v, %v)", out, err)
	}
}

func TestStitchContainedNext(t *testing.T) {
	prev := MustNew(t0, []float64{1, 2, 3, 4})
	next := MustNew(hoursAfter(1), []float64{5, 7}) // fully inside prev
	out, err := Stitch(prev, next, RatioOfMeans)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != prev.Len() {
		t.Errorf("contained stitch len = %d, want %d", out.Len(), prev.Len())
	}
}

// TestStitchAllRecoversShape is the core §3.2 guarantee: stitching
// piecewise-normalized views of a ground-truth series reconstructs the
// truth up to one global scale factor.
func TestStitchAllRecoversShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := make([]float64, 24*21) // three weeks
	for i := range truth {
		truth[i] = 5 + 4*math.Sin(float64(i)/24*2*math.Pi) + rng.Float64()
	}
	// Inject two spikes.
	for i := 100; i < 110; i++ {
		truth[i] += 40
	}
	for i := 300; i < 320; i++ {
		truth[i] += 25
	}
	truthSeries := MustNew(t0, truth)

	specs, err := Partition(t0, hoursAfter(len(truth)), 168, 24)
	if err != nil {
		t.Fatal(err)
	}
	var frames []*Series
	for _, spec := range specs {
		vals := make([]float64, spec.Hours)
		off := int(spec.Start.Sub(t0) / time.Hour)
		copy(vals, truth[off:off+spec.Hours])
		// Piecewise normalization: scale each frame to max 100,
		// destroying the global scale (what GT does).
		f := MustNew(spec.Start, vals).Renormalize()
		frames = append(frames, f)
	}
	got, err := StitchAll(frames, RatioOfMeans)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(truth) {
		t.Fatalf("stitched len = %d, want %d", got.Len(), len(truth))
	}
	corr, err := Correlation(got, truthSeries)
	if err != nil {
		t.Fatal(err)
	}
	if corr < 0.999 {
		t.Errorf("stitched/truth correlation = %g, want ≥0.999", corr)
	}
	max, _, _ := got.Max()
	if math.Abs(max-100) > 1e-9 {
		t.Errorf("stitched max = %g, want 100", max)
	}
}

func TestStitchAllEmpty(t *testing.T) {
	if _, err := StitchAll(nil, RatioOfMeans); !errors.Is(err, ErrEmpty) {
		t.Error("StitchAll(nil) should return ErrEmpty")
	}
}

func TestAverage(t *testing.T) {
	a := MustNew(t0, []float64{1, 3})
	b := MustNew(t0, []float64{3, 5})
	avg, err := Average([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if avg.AtIndex(0) != 2 || avg.AtIndex(1) != 4 {
		t.Errorf("Average = %v", avg.Values())
	}
	if _, err := Average(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Average(nil) should return ErrEmpty")
	}
	c := MustNew(hoursAfter(1), []float64{1, 2})
	if _, err := Average([]*Series{a, c}); !errors.Is(err, ErrShape) {
		t.Error("Average with shifted series should return ErrShape")
	}
	d := MustNew(t0, []float64{1})
	if _, err := Average([]*Series{a, d}); !errors.Is(err, ErrShape) {
		t.Error("Average with shorter series should return ErrShape")
	}
}

func TestAverageReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	truth := make([]float64, 168)
	for i := range truth {
		truth[i] = 50 + 20*math.Sin(float64(i)/12)
	}
	noisy := func() *Series {
		v := make([]float64, len(truth))
		for i := range v {
			v[i] = truth[i] + rng.NormFloat64()*10
		}
		return MustNew(t0, v)
	}
	rmse := func(s *Series) float64 {
		var sum float64
		for i, v := range s.Values() {
			d := v - truth[i]
			sum += d * d
		}
		return math.Sqrt(sum / float64(len(truth)))
	}
	single := noisy()
	many := []*Series{single}
	for i := 0; i < 15; i++ {
		many = append(many, noisy())
	}
	avg, err := Average(many)
	if err != nil {
		t.Fatal(err)
	}
	if rmse(avg) >= rmse(single)/2 {
		t.Errorf("averaging 16 fetches should cut RMSE ~4x: single=%g avg=%g", rmse(single), rmse(avg))
	}
}

func TestCorrelation(t *testing.T) {
	a := MustNew(t0, []float64{1, 2, 3, 4})
	b := MustNew(t0, []float64{2, 4, 6, 8})
	c := MustNew(t0, []float64{4, 3, 2, 1})
	if corr, _ := Correlation(a, b); math.Abs(corr-1) > 1e-12 {
		t.Errorf("corr(a, 2a) = %g, want 1", corr)
	}
	if corr, _ := Correlation(a, c); math.Abs(corr+1) > 1e-12 {
		t.Errorf("corr(a, -a) = %g, want -1", corr)
	}
	flat := MustNew(t0, []float64{5, 5, 5, 5})
	if corr, _ := Correlation(a, flat); corr != 0 {
		t.Errorf("corr with constant = %g, want 0", corr)
	}
	short := MustNew(t0, []float64{1})
	if _, err := Correlation(a, short); !errors.Is(err, ErrShape) {
		t.Error("shape mismatch should return ErrShape")
	}
}

func TestPartitionBasic(t *testing.T) {
	// 3 weeks, weekly frames, 24 h overlap → strides of 144 h.
	to := hoursAfter(24 * 21)
	specs, err := Partition(t0, to, 168, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 3 {
		t.Fatalf("got %d frames, want >= 3", len(specs))
	}
	if !specs[0].Start.Equal(t0) {
		t.Errorf("first frame starts %v", specs[0].Start)
	}
	last := specs[len(specs)-1]
	if !last.Start.Add(time.Duration(last.Hours) * time.Hour).Equal(to) {
		t.Errorf("last frame ends %v, want %v", last.Start.Add(time.Duration(last.Hours)*time.Hour), to)
	}
	// Every consecutive pair must overlap.
	for i := 1; i < len(specs); i++ {
		prevEnd := specs[i-1].Start.Add(time.Duration(specs[i-1].Hours) * time.Hour)
		if !specs[i].Start.Before(prevEnd) {
			t.Errorf("frames %d and %d do not overlap", i-1, i)
		}
	}
}

func TestPartitionExactFit(t *testing.T) {
	// Range exactly one frame.
	specs, err := Partition(t0, hoursAfter(168), 168, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Hours != 168 {
		t.Fatalf("specs = %+v, want single full frame", specs)
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(t0, hoursAfter(100), 168, 24); err == nil {
		t.Error("range shorter than frame should error")
	}
	if _, err := Partition(t0, hoursAfter(200), 168, 0); err == nil {
		t.Error("zero overlap should error")
	}
	if _, err := Partition(t0, hoursAfter(200), 168, 168); err == nil {
		t.Error("overlap == frameLen should error")
	}
	if _, err := Partition(t0.Add(time.Minute), hoursAfter(200), 168, 24); err == nil {
		t.Error("misaligned bounds should error")
	}
}

func TestPartitionCoversRangeProperty(t *testing.T) {
	f := func(weeks uint8, overlapRaw uint8) bool {
		w := int(weeks%8) + 1
		overlap := int(overlapRaw%167) + 1
		to := hoursAfter(w * 168)
		specs, err := Partition(t0, to, 168, overlap)
		if err != nil {
			return false
		}
		// Coverage: union of frames must equal [t0, to).
		covered := make([]bool, w*168)
		for _, s := range specs {
			off := int(s.Start.Sub(t0) / time.Hour)
			if off < 0 || off+s.Hours > len(covered) {
				return false
			}
			for i := 0; i < s.Hours; i++ {
				covered[off+i] = true
			}
		}
		for _, c := range covered {
			if !c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeMax(t *testing.T) {
	a := MustNew(t0, []float64{1, 5, 2})
	b := MustNew(t0, []float64{3, 1, 2})
	m, err := MergeMax([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 5, 2}
	for i, w := range want {
		if m.AtIndex(i) != w {
			t.Fatalf("MergeMax = %v, want %v", m.Values(), want)
		}
	}
	if _, err := MergeMax(nil); !errors.Is(err, ErrEmpty) {
		t.Error("MergeMax(nil) should return ErrEmpty")
	}
	c := MustNew(hoursAfter(1), []float64{1, 2, 3})
	if _, err := MergeMax([]*Series{a, c}); !errors.Is(err, ErrShape) {
		t.Error("MergeMax with misaligned series should return ErrShape")
	}
}

func TestHours(t *testing.T) {
	if Hours(90*time.Minute) != 1 || Hours(3*time.Hour) != 3 {
		t.Error("Hours wrong")
	}
}

func TestSortSpecs(t *testing.T) {
	specs := []FrameSpec{{Start: hoursAfter(10)}, {Start: t0}, {Start: hoursAfter(5)}}
	SortSpecs(specs)
	if !specs[0].Start.Equal(t0) || !specs[2].Start.Equal(hoursAfter(10)) {
		t.Errorf("SortSpecs = %+v", specs)
	}
}

func TestRatioEstimatorString(t *testing.T) {
	if RatioOfMeans.String() != "ratio-of-means" ||
		MeanOfRatios.String() != "mean-of-ratios" ||
		MedianOfRatios.String() != "median-of-ratios" {
		t.Error("estimator names wrong")
	}
	if RatioEstimator(9).String() != "RatioEstimator(9)" {
		t.Error("unknown estimator name wrong")
	}
}

func TestZeros(t *testing.T) {
	z, err := Zeros(t0, 5)
	if err != nil || z.Len() != 5 {
		t.Fatalf("Zeros = (%v, %v)", z, err)
	}
	for i := 0; i < 5; i++ {
		if z.AtIndex(i) != 0 {
			t.Fatal("Zeros not zero")
		}
	}
}
