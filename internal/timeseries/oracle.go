package timeseries

import (
	"fmt"
	"time"

	"sift/internal/stats"
)

// This file preserves the pre-kernel allocating implementations verbatim.
// They are the equivalence oracles the kernel property tests compare
// against bit for bit, and the "before" side of the kernel microbenches
// (BenchmarkStitchAll/ref, BenchmarkAverage/ref) — without them the
// allocation win would be unmeasurable once the public API became thin
// kernel wrappers. They are reference code: do not optimize them.

// ScaleRef is the legacy Scale: clone, then multiply in place.
func (s *Series) ScaleRef(f float64) *Series {
	out := s.Clone()
	for i := range out.values {
		out.values[i] *= f
	}
	return out
}

// RenormalizeRef is the legacy Renormalize built on ScaleRef.
func (s *Series) RenormalizeRef() *Series {
	max, _, err := stats.Max(s.values)
	if err != nil || max <= 0 {
		return s.Clone()
	}
	return s.ScaleRef(100 / max)
}

// AverageRef is the legacy Average: series-major accumulation into a
// fresh sum slice, then a copying New.
func AverageRef(series []*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, ErrEmpty
	}
	first := series[0]
	sum := make([]float64, first.Len())
	for _, s := range series {
		if !s.start.Equal(first.start) || s.Len() != first.Len() {
			return nil, ErrShape
		}
		for i, v := range s.values {
			sum[i] += v
		}
	}
	for i := range sum {
		sum[i] /= float64(len(series))
	}
	return New(first.start, sum)
}

// ConsensusAverageRef is the legacy ConsensusAverage: AverageRef, then a
// quorum pass zeroing under-attested positions.
func ConsensusAverageRef(series []*Series, quorum int) (*Series, error) {
	avg, err := AverageRef(series)
	if err != nil {
		return nil, err
	}
	if quorum <= 1 {
		return avg, nil
	}
	for i := 0; i < avg.Len(); i++ {
		present := 0
		for _, s := range series {
			if s.values[i] > 0 {
				present++
			}
		}
		if present < quorum {
			avg.values[i] = 0
		}
	}
	return avg, nil
}

// OverlapRatioAnchoredRef is the legacy OverlapRatioAnchored: it
// materializes the overlap window into two fresh slices via At.
func OverlapRatioAnchoredRef(prev, next *Series, est RatioEstimator) (ratio float64, anchored bool, err error) {
	lo := maxTime(prev.start, next.start)
	hi := minTime(prev.End(), next.End())
	if !lo.Before(hi) {
		return 0, false, ErrNoOverlap
	}
	n := int(hi.Sub(lo) / Step)
	var a, b []float64
	for i := 0; i < n; i++ {
		t := lo.Add(time.Duration(i) * Step)
		va, _ := prev.At(t)
		vb, _ := next.At(t)
		a = append(a, va)
		b = append(b, vb)
	}
	switch est {
	case RatioOfMeans:
		sa, sb := stats.Sum(a), stats.Sum(b)
		if sa <= 0 || sb <= 0 {
			return 1, false, nil
		}
		return sa / sb, true, nil
	case MeanOfRatios, MedianOfRatios:
		var ratios []float64
		for i := range a {
			if a[i] > 0 && b[i] > 0 {
				ratios = append(ratios, a[i]/b[i])
			}
		}
		if len(ratios) == 0 {
			return 1, false, nil
		}
		if est == MeanOfRatios {
			return stats.Mean(ratios), true, nil
		}
		m, err := stats.Median(ratios)
		if err != nil {
			return 1, false, nil
		}
		return m, true, nil
	default:
		return 0, false, fmt.Errorf("timeseries: unknown estimator %v", est)
	}
}

// stitchAnchoredRef is the legacy per-seam stitch: scale a clone of next,
// clone the accumulation, append the suffix.
func stitchAnchoredRef(prev, next *Series, est RatioEstimator) (*Series, bool, error) {
	if prev.Len() == 0 {
		return next.Clone(), true, nil
	}
	if next.start.Before(prev.start) {
		return nil, false, ErrOrder
	}
	ratio, anchored, err := OverlapRatioAnchoredRef(prev, next, est)
	if err != nil {
		return nil, false, err
	}
	scaled := next.ScaleRef(ratio)
	out := prev.Clone()
	if scaled.End().After(out.End()) {
		fromIdx, err := scaled.Index(out.End())
		if err != nil {
			return nil, false, err
		}
		out.values = append(out.values, scaled.values[fromIdx:]...)
	}
	return out, anchored, nil
}

// StitchFromCountedRef is the legacy fold: a full accumulation clone per
// seam.
func StitchFromCountedRef(prefix *Series, frames []*Series, est RatioEstimator) (*Series, int, error) {
	var acc *Series
	if prefix != nil {
		acc = prefix.Clone()
	}
	if acc == nil {
		if len(frames) == 0 {
			return nil, 0, ErrEmpty
		}
		acc = frames[0].Clone()
		frames = frames[1:]
	}
	unanchored := 0
	for _, f := range frames {
		var anchored bool
		var err error
		acc, anchored, err = stitchAnchoredRef(acc, f, est)
		if err != nil {
			return nil, unanchored, err
		}
		if !anchored {
			unanchored++
		}
	}
	return acc, unanchored, nil
}

// StitchAllRef is the legacy StitchAll over the reference fold.
func StitchAllRef(frames []*Series, est RatioEstimator) (*Series, error) {
	acc, _, err := StitchFromCountedRef(nil, frames, est)
	if err != nil {
		return nil, err
	}
	return acc.RenormalizeRef(), nil
}
