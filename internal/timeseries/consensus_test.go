package timeseries

import (
	"errors"
	"testing"
)

func TestConsensusAverageQuorum(t *testing.T) {
	// Position 0: nonzero in 1 of 3 rounds (a sampling ghost).
	// Position 1: nonzero in 2 of 3 rounds (borderline).
	// Position 2: nonzero in all rounds (real signal).
	rounds := []*Series{
		MustNew(t0, []float64{3, 4, 10}),
		MustNew(t0, []float64{0, 2, 12}),
		MustNew(t0, []float64{0, 0, 14}),
	}
	got, err := ConsensusAverage(rounds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.AtIndex(0) != 0 {
		t.Errorf("ghost position = %g, want 0 (below quorum)", got.AtIndex(0))
	}
	if got.AtIndex(1) != 2 {
		t.Errorf("borderline position = %g, want mean 2 (meets quorum)", got.AtIndex(1))
	}
	if got.AtIndex(2) != 12 {
		t.Errorf("signal position = %g, want mean 12", got.AtIndex(2))
	}
}

func TestConsensusAverageQuorumOneIsPlainMean(t *testing.T) {
	rounds := []*Series{
		MustNew(t0, []float64{1, 0}),
		MustNew(t0, []float64{3, 0}),
	}
	got, err := ConsensusAverage(rounds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.AtIndex(0) != 2 || got.AtIndex(1) != 0 {
		t.Errorf("quorum 1 should be a plain mean: %v", got.Values())
	}
}

func TestConsensusAverageErrors(t *testing.T) {
	if _, err := ConsensusAverage(nil, 2); !errors.Is(err, ErrEmpty) {
		t.Error("empty input should return ErrEmpty")
	}
	a := MustNew(t0, []float64{1})
	b := MustNew(t0, []float64{1, 2})
	if _, err := ConsensusAverage([]*Series{a, b}, 1); !errors.Is(err, ErrShape) {
		t.Error("shape mismatch should return ErrShape")
	}
}

func TestConsensusAverageFullQuorum(t *testing.T) {
	rounds := []*Series{
		MustNew(t0, []float64{5, 5}),
		MustNew(t0, []float64{5, 0}),
	}
	got, err := ConsensusAverage(rounds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.AtIndex(0) != 5 {
		t.Errorf("all-present position = %g", got.AtIndex(0))
	}
	if got.AtIndex(1) != 0 {
		t.Errorf("half-present position = %g, want 0 at full quorum", got.AtIndex(1))
	}
}
