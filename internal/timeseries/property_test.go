package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

var propT0 = time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

// TestStitchRecoversGlobalSeries is the reconstruction property at the
// heart of §3.2: take one global series, cut it into overlapping frames,
// renormalize each frame independently (an arbitrary positive scale, as
// Google Trends does per request), and the stitch must recover the global
// shape — exactly, up to float error, because every overlap carries
// signal.
func TestStitchRecoversGlobalSeries(t *testing.T) {
	for trial := int64(0); trial < 25; trial++ {
		rng := rand.New(rand.NewSource(trial))

		hours := 168 + rng.Intn(600)
		values := make([]float64, hours)
		for i := range values {
			// Strictly positive so no overlap is ever all-zero.
			values[i] = 1 + 99*rng.Float64()
		}
		global := MustNew(propT0, values)

		frameLen := 48 + rng.Intn(121)
		if frameLen > hours {
			frameLen = hours
		}
		overlap := 1 + rng.Intn(frameLen-1)
		specs, err := Partition(propT0, propT0.Add(time.Duration(hours)*Step), frameLen, overlap)
		if err != nil {
			t.Fatalf("trial %d: partition: %v", trial, err)
		}

		frames := make([]*Series, len(specs))
		for i, spec := range specs {
			cut, err := global.Slice(spec.Start, spec.Start.Add(time.Duration(spec.Hours)*Step))
			if err != nil {
				t.Fatalf("trial %d: slicing frame %d: %v", trial, i, err)
			}
			frames[i] = cut.Scale(0.05 + 10*rng.Float64())
		}

		for _, est := range []RatioEstimator{RatioOfMeans, MeanOfRatios, MedianOfRatios} {
			got, err := StitchAll(frames, est)
			if err != nil {
				t.Fatalf("trial %d (%v): stitch: %v", trial, est, err)
			}
			want := global.Renormalize()
			if got.Len() != want.Len() {
				t.Fatalf("trial %d (%v): reconstructed %d hours, want %d", trial, est, got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				g, w := got.AtIndex(i), want.AtIndex(i)
				if math.Abs(g-w) > 1e-6*math.Max(1, w) {
					t.Fatalf("trial %d (%v): hour %d: reconstructed %.9f, want %.9f", trial, est, i, g, w)
				}
			}
		}
	}
}

// TestConsensusAverageMatchesDirectAverage: with quorum 1 the consensus
// average must equal the plain mean, and any quorum must never raise a
// value above it.
func TestConsensusAverageProperties(t *testing.T) {
	for trial := int64(0); trial < 10; trial++ {
		rng := rand.New(rand.NewSource(100 + trial))
		n := 24 + rng.Intn(168)
		k := 2 + rng.Intn(6)
		series := make([]*Series, k)
		for j := range series {
			vals := make([]float64, n)
			for i := range vals {
				if rng.Float64() < 0.3 {
					vals[i] = 0 // privacy-threshold zeros
				} else {
					vals[i] = 100 * rng.Float64()
				}
			}
			series[j] = MustNew(propT0, vals)
		}
		plain, err := Average(series)
		if err != nil {
			t.Fatal(err)
		}
		q1, err := ConsensusAverage(series, 1)
		if err != nil {
			t.Fatal(err)
		}
		strict, err := ConsensusAverage(series, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if q1.AtIndex(i) != plain.AtIndex(i) {
				t.Fatalf("trial %d: quorum 1 diverged from plain mean at %d", trial, i)
			}
			if s := strict.AtIndex(i); s != 0 && s != plain.AtIndex(i) {
				t.Fatalf("trial %d: strict quorum invented value %v at %d", trial, s, i)
			}
		}
	}
}

func TestStitchZeroOverlapErrors(t *testing.T) {
	prev := MustNew(propT0, []float64{1, 2, 3})
	adjacent := MustNew(propT0.Add(3*Step), []float64{4, 5})
	if _, err := Stitch(prev, adjacent, RatioOfMeans); err == nil {
		t.Error("adjacent (zero-overlap) frames must not stitch")
	}
	gap := MustNew(propT0.Add(10*Step), []float64{4, 5})
	if _, err := Stitch(prev, gap, RatioOfMeans); err == nil {
		t.Error("disjoint frames must not stitch")
	}
	early := MustNew(propT0.Add(-2*Step), []float64{4, 5})
	if _, err := Stitch(prev, early, RatioOfMeans); err == nil {
		t.Error("out-of-order frames must not stitch")
	}
}

// TestStitchAllZeroOverlap pins the gap-degradation fallback: when the
// shared window carries no signal (a zero-filled gap frame on either
// side), the ratio falls back to 1 and the stitch trusts the new frame's
// own scale instead of dividing by zero or erroring out.
func TestStitchAllZeroOverlap(t *testing.T) {
	for _, est := range []RatioEstimator{RatioOfMeans, MeanOfRatios, MedianOfRatios} {
		prev := MustNew(propT0, []float64{5, 5, 0, 0})
		next := MustNew(propT0.Add(2*Step), []float64{7, 9, 11})
		ratio, err := OverlapRatio(prev, next, est)
		if err != nil {
			t.Fatalf("%v: %v", est, err)
		}
		if ratio != 1 {
			t.Errorf("%v: all-zero overlap ratio = %v, want fallback 1", est, ratio)
		}
		out, err := Stitch(prev, next, est)
		if err != nil {
			t.Fatalf("%v: stitch through zero overlap: %v", est, err)
		}
		// Stitch keeps prev over the shared hours and appends next's
		// suffix at the fallback ratio of 1.
		want := []float64{5, 5, 0, 0, 11}
		for i, w := range want {
			if out.AtIndex(i) != w {
				t.Errorf("%v: value %d = %v, want %v", est, i, out.AtIndex(i), w)
			}
		}
	}

	// The fully-degraded case: every frame zero (an all-gap crawl) must
	// stitch and renormalize without error into an all-zero series.
	zeroFrames := []*Series{
		MustNew(propT0, make([]float64, 48)),
		MustNew(propT0.Add(24*Step), make([]float64, 48)),
	}
	out, err := StitchAll(zeroFrames, RatioOfMeans)
	if err != nil {
		t.Fatalf("all-zero stitch: %v", err)
	}
	for i := 0; i < out.Len(); i++ {
		if out.AtIndex(i) != 0 {
			t.Fatalf("all-zero stitch produced %v at %d", out.AtIndex(i), i)
		}
	}
}

func TestStitchEmptyPrev(t *testing.T) {
	empty := &Series{}
	next := MustNew(propT0, []float64{1, 2})
	out, err := Stitch(empty, next, RatioOfMeans)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.AtIndex(0) != 1 {
		t.Errorf("empty-prev stitch = %v", out.Values())
	}
}

// FuzzStitch drives Stitch with fuzzer-chosen shapes, offsets, and value
// patterns: whatever the inputs, it must never panic, and a successful
// stitch must produce a series of the right span with finite values.
func FuzzStitch(f *testing.F) {
	f.Add(int64(1), uint8(48), uint8(48), uint8(24), false)
	f.Add(int64(2), uint8(10), uint8(3), uint8(9), true)
	f.Add(int64(3), uint8(1), uint8(1), uint8(0), false)
	f.Add(int64(4), uint8(200), uint8(200), uint8(199), true)
	f.Fuzz(func(t *testing.T, seed int64, prevLen, nextLen, offset uint8, zeroOverlap bool) {
		if prevLen == 0 || nextLen == 0 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		mk := func(start time.Time, n int) *Series {
			vals := make([]float64, n)
			for i := range vals {
				if !zeroOverlap {
					vals[i] = 100 * rng.Float64()
				}
			}
			return MustNew(start, vals)
		}
		prev := mk(propT0, int(prevLen))
		next := mk(propT0.Add(time.Duration(offset)*Step), int(nextLen))

		out, err := Stitch(prev, next, RatioEstimator(seed%3))
		if err != nil {
			// Errors are legal (no overlap, inverted order) — panics are not.
			return
		}
		wantLen := int(prevLen)
		if end := int(offset) + int(nextLen); end > wantLen {
			wantLen = end
		}
		if out.Len() != wantLen {
			t.Fatalf("stitched length %d, want %d (prev %d, next %d @+%d)", out.Len(), wantLen, prevLen, nextLen, offset)
		}
		if !out.Start().Equal(prev.Start()) {
			t.Fatalf("stitched start %v, want %v", out.Start(), prev.Start())
		}
		for i := 0; i < out.Len(); i++ {
			if v := out.AtIndex(i); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("non-finite or negative value %v at %d", v, i)
			}
		}
	})
}
