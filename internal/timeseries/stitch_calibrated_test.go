package timeseries

import (
	"math"
	"testing"
	"time"
)

// calibFixture builds two overlapping 168h frames from one ground-truth
// series, each normalized to its own window max (the Trends piecewise
// destruction of scale), with the overlap region [144, 168) carrying no
// signal — the case the pairwise overlap estimator cannot anchor. scaleOf
// is each window's max expressed in "anchor units" (anchor level 1).
func calibFixture(t *testing.T) (frames []*Series, scales []float64, truth []float64) {
	t.Helper()
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	truth = make([]float64, 312)
	truth[50] = 40  // window-1 signal
	truth[250] = 80 // window-2 signal, twice as strong
	norm := func(lo, hi int) (*Series, float64) {
		max := 0.0
		for _, v := range truth[lo:hi] {
			if v > max {
				max = v
			}
		}
		vals := make([]float64, hi-lo)
		for i, v := range truth[lo:hi] {
			vals[i] = v / max * 100
		}
		return MustNew(start.Add(time.Duration(lo)*time.Hour), vals), max
	}
	f1, m1 := norm(0, 168)
	f2, m2 := norm(144, 312)
	return []*Series{f1, f2}, []float64{m1, m2}, truth
}

func TestStitchCalibratedRecoversScaleAcrossSilentOverlap(t *testing.T) {
	frames, scales, truth := calibFixture(t)
	sb := NewStitchBuffer(nil)
	defer sb.Release()

	// The plain overlap fold cannot anchor the silent seam: ratio-1
	// fallback, wrong relative scale.
	plain, unanchored, err := sb.StitchCounted(nil, frames, RatioOfMeans)
	if err != nil {
		t.Fatal(err)
	}
	if unanchored != 1 {
		t.Fatalf("plain fold: %d unanchored seams, want 1", unanchored)
	}
	if r := plain.AtIndex(250) / plain.AtIndex(50); math.Abs(r-2) < 0.01 {
		t.Fatalf("plain fold accidentally recovered the true ratio %v — fixture broken", r)
	}

	got, unanchored, rescaled, err := sb.StitchCalibrated(nil, frames, scales, RatioOfMeans)
	if err != nil {
		t.Fatal(err)
	}
	if unanchored != 0 {
		t.Fatalf("calibrated fold: %d unanchored seams, want 0", unanchored)
	}
	if rescaled != 1 {
		t.Fatalf("calibrated fold: %d rescaled seams, want 1", rescaled)
	}
	// Relative scale must match ground truth: hour 250 is twice hour 50.
	if r := got.AtIndex(250) / got.AtIndex(50); math.Abs(r-2) > 1e-9 {
		t.Fatalf("calibrated ratio %v, want 2", r)
	}
	_ = truth
}

func TestStitchCalibratedNoScalesMatchesStitchCounted(t *testing.T) {
	frames, _, _ := calibFixture(t)
	nan := []float64{math.NaN(), math.NaN()}
	sb := NewStitchBuffer(nil)
	defer sb.Release()
	want, wantUn, err := sb.StitchCounted(nil, frames, RatioOfMeans)
	if err != nil {
		t.Fatal(err)
	}
	got, gotUn, rescaled, err := sb.StitchCalibrated(nil, frames, nan, RatioOfMeans)
	if err != nil {
		t.Fatal(err)
	}
	if rescaled != 0 {
		t.Fatalf("rescaled %d seams without scales", rescaled)
	}
	if gotUn != wantUn {
		t.Fatalf("unanchored %d, want %d", gotUn, wantUn)
	}
	if !got.Equal(want) {
		t.Fatal("scale-free calibrated fold differs from StitchCounted")
	}
}

func TestStitchCalibratedZeroFrameIsVacuous(t *testing.T) {
	start := time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)
	f1 := MustNew(start, make([]float64, 168))
	v2 := make([]float64, 168)
	v2[100] = 100
	f2 := MustNew(start.Add(144*time.Hour), v2)
	v3 := make([]float64, 168)
	v3[60] = 50
	f3 := MustNew(start.Add(288*time.Hour), v3)
	sb := NewStitchBuffer(nil)
	defer sb.Release()
	// Window scales in anchor units: silent window scale 0 (unknowable),
	// then 10 and 5 — hour 388 must come out half of hour 244.
	got, unanchored, rescaled, err := sb.StitchCalibrated(nil, []*Series{f1, f2, f3}, []float64{0, 10, 5}, RatioOfMeans)
	if err != nil {
		t.Fatal(err)
	}
	if unanchored != 0 {
		t.Fatalf("%d unanchored seams, want 0: a leading silent window is vacuous", unanchored)
	}
	if rescaled != 1 {
		t.Fatalf("rescaled %d, want 1 (f3 joined by calibration)", rescaled)
	}
	i2, err := got.Index(f2.Start().Add(100 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	i3, err := got.Index(f3.Start().Add(60 * time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if r := got.AtIndex(i3) / got.AtIndex(i2); math.Abs(r-0.25) > 1e-9 {
		t.Fatalf("relative scale %v, want 0.25 (50·5 vs 100·10 in anchor units)", r)
	}
}
