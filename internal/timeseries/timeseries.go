// Package timeseries implements the hourly time-series algebra behind
// SIFT's processing pipeline (§3.2 of the paper): aligning overlapping
// Google Trends frames, estimating the scaling ratio between consecutive
// piecewise-normalized frames from their overlap, stitching frames into a
// continuous global series, averaging repeated fetches, and renormalizing
// the result onto the familiar 0–100 index.
//
// A Series is a regular grid: a start instant plus one value per step.
// All series in this repository are hourly and hour-aligned in UTC, which
// the constructors enforce.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"sift/internal/stats"
)

// Step is the grid resolution of every series: Google Trends serves hourly
// blocks for weekly frames, and SIFT operates at that resolution
// throughout.
const Step = time.Hour

// Common errors.
var (
	ErrMisaligned = errors.New("timeseries: instant not aligned to the hourly grid")
	ErrNoOverlap  = errors.New("timeseries: series do not overlap")
	ErrOrder      = errors.New("timeseries: next series must not start before the current one")
	ErrEmpty      = errors.New("timeseries: empty series")
	ErrShape      = errors.New("timeseries: series have different shapes")
)

// Series is an hourly time series. Values[i] covers the hour beginning at
// Start + i*Step. Construct with New; the zero value is an empty series.
type Series struct {
	start  time.Time
	values []float64
}

// New creates a Series starting at start (which must be hour-aligned UTC)
// with the given values. The slice is copied.
func New(start time.Time, values []float64) (*Series, error) {
	if !Aligned(start) {
		return nil, fmt.Errorf("%w: %v", ErrMisaligned, start)
	}
	v := make([]float64, len(values))
	copy(v, values)
	return &Series{start: start.UTC(), values: v}, nil
}

// MustNew is New for inputs known to be valid; it panics otherwise.
func MustNew(start time.Time, values []float64) *Series {
	s, err := New(start, values)
	if err != nil {
		panic(err)
	}
	return s
}

// Zeros creates a Series of n zeros starting at start.
func Zeros(start time.Time, n int) (*Series, error) {
	return New(start, make([]float64, n))
}

// Aligned reports whether t falls exactly on the hourly grid.
func Aligned(t time.Time) bool { return t.UTC().Truncate(Step).Equal(t.UTC()) }

// Start returns the instant of the first value.
func (s *Series) Start() time.Time { return s.start }

// End returns the instant just past the last value (Start + Len*Step).
func (s *Series) End() time.Time { return s.start.Add(time.Duration(s.Len()) * Step) }

// Len returns the number of hourly values.
func (s *Series) Len() int { return len(s.values) }

// Values returns a copy of the underlying values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// At returns the value for the hour beginning at t. ok is false when t is
// outside the series or misaligned.
func (s *Series) At(t time.Time) (v float64, ok bool) {
	idx, err := s.Index(t)
	if err != nil {
		return 0, false
	}
	return s.values[idx], true
}

// AtIndex returns the i-th value; it panics when i is out of range, like a
// slice access.
func (s *Series) AtIndex(i int) float64 { return s.values[i] }

// Index converts an instant to a value index.
func (s *Series) Index(t time.Time) (int, error) {
	if !Aligned(t) {
		return 0, fmt.Errorf("%w: %v", ErrMisaligned, t)
	}
	d := t.UTC().Sub(s.start)
	idx := int(d / Step)
	if d < 0 || idx >= s.Len() {
		return 0, fmt.Errorf("timeseries: %v outside series [%v, %v)", t, s.start, s.End())
	}
	return idx, nil
}

// Time converts a value index to the instant its hour begins.
func (s *Series) Time(i int) time.Time { return s.start.Add(time.Duration(i) * Step) }

// Clone returns an independent copy of s.
func (s *Series) Clone() *Series {
	return &Series{start: s.start, values: s.Values()}
}

// Equal reports whether two series share the same start, length, and
// exact values. Nil equals only nil.
func (s *Series) Equal(o *Series) bool {
	if s == nil || o == nil {
		return s == o
	}
	if !s.start.Equal(o.start) || len(s.values) != len(o.values) {
		return false
	}
	for i, v := range s.values {
		if o.values[i] != v {
			return false
		}
	}
	return true
}

// Slice returns the sub-series covering [from, to). Both bounds must be
// aligned and within [Start, End]; from must precede to.
func (s *Series) Slice(from, to time.Time) (*Series, error) {
	if !Aligned(from) || !Aligned(to) {
		return nil, ErrMisaligned
	}
	if !from.Before(to) {
		return nil, errors.New("timeseries: empty or inverted slice bounds")
	}
	if from.Before(s.start) || to.After(s.End()) {
		return nil, fmt.Errorf("timeseries: slice [%v, %v) outside series [%v, %v)", from, to, s.start, s.End())
	}
	lo := int(from.UTC().Sub(s.start) / Step)
	hi := int(to.UTC().Sub(s.start) / Step)
	return New(from, s.values[lo:hi])
}

// Scale returns a copy of s with every value multiplied by f.
func (s *Series) Scale(f float64) *Series {
	out := &Series{start: s.start, values: make([]float64, len(s.values))}
	// The destination is sized to match, so ScaleInto cannot fail.
	_ = s.ScaleInto(out.values, f)
	return out
}

// Max returns the maximum value and the instant of its hour. It returns
// ErrEmpty for an empty series.
func (s *Series) Max() (v float64, at time.Time, err error) {
	max, idx, err := stats.Max(s.values)
	if err != nil {
		return 0, time.Time{}, ErrEmpty
	}
	return max, s.Time(idx), nil
}

// Renormalize rescales the series so its maximum becomes 100, mirroring
// the final indexing step of the processing pipeline. An all-zero series
// is returned unchanged.
func (s *Series) Renormalize() *Series {
	return s.Clone().RenormalizeInPlace()
}

// RatioEstimator selects how the inter-frame scaling ratio is estimated
// from the values the two frames share over their overlap window. The
// estimators differ in robustness to the privacy-threshold zeros GT
// injects into small-volume hours; the ablation bench compares them.
type RatioEstimator uint8

const (
	// RatioOfMeans divides the sum of the left frame's overlap by the sum
	// of the right frame's overlap. It weighs busy hours more, which makes
	// it robust to zeroed quiet hours; it is the default.
	RatioOfMeans RatioEstimator = iota
	// MeanOfRatios averages per-hour ratios, skipping hours where either
	// side is zero.
	MeanOfRatios
	// MedianOfRatios takes the median of per-hour ratios, skipping zeros.
	MedianOfRatios
)

// String names the estimator for reports.
func (r RatioEstimator) String() string {
	switch r {
	case RatioOfMeans:
		return "ratio-of-means"
	case MeanOfRatios:
		return "mean-of-ratios"
	case MedianOfRatios:
		return "median-of-ratios"
	default:
		return fmt.Sprintf("RatioEstimator(%d)", uint8(r))
	}
}

// OverlapRatio estimates the factor by which next must be multiplied to
// continue prev's scale, using the overlap window the two series share.
// It returns ErrNoOverlap when the series share no hours, and falls back
// to a ratio of 1 when the overlap carries no signal (all zeros on either
// side) — the stitch then simply trusts the new frame's own scale. Use
// OverlapRatioAnchored to learn whether that fallback fired.
func OverlapRatio(prev, next *Series, est RatioEstimator) (float64, error) {
	ratio, _, err := OverlapRatioAnchored(prev, next, est)
	return ratio, err
}

// OverlapRatioAnchored is OverlapRatio with the fallback made visible:
// anchored is false when the overlap carried no usable signal and the
// returned ratio of 1 is an assumption rather than an estimate. An
// unanchored seam decouples the scales on its two sides, so callers
// tracking crawl health want to count them (the pipeline surfaces the
// count as CrawlHealth.UnanchoredStitches).
func OverlapRatioAnchored(prev, next *Series, est RatioEstimator) (ratio float64, anchored bool, err error) {
	return overlapRatioRaw(prev.start, prev.values, next, est)
}

// Stitch extends prev with next: it estimates the scaling ratio over the
// overlap, rescales next by it, and appends next's non-overlapping suffix.
// prev is not modified. next must start within prev (overlap required) and
// must not start before prev.
func Stitch(prev, next *Series, est RatioEstimator) (*Series, error) {
	out, _, err := StitchFromCounted(prev, []*Series{next}, est)
	return out, err
}

// StitchFrom folds a left-to-right sequence of overlapping frames onto an
// already-stitched prefix (nil for a fresh fold), returning the raw — not
// renormalized — accumulation. Because the fold only ever appends beyond
// the accumulation's end, a saved raw accumulation restricted to a spec
// prefix is exactly the fold over that prefix, which is what lets the
// pipeline's incremental recompute restitch only the suffix a change
// affected. Frames must be ordered by start time and each must overlap
// its predecessor (or the prefix).
func StitchFrom(prefix *Series, frames []*Series, est RatioEstimator) (*Series, error) {
	acc, _, err := StitchFromCounted(prefix, frames, est)
	return acc, err
}

// StitchFromCounted is StitchFrom plus the number of unanchored seams in
// the fold — seams whose overlap carried no signal, where the ratio-1
// fallback silently decoupled the scales on either side. The numeric
// result is identical to StitchFrom's.
func StitchFromCounted(prefix *Series, frames []*Series, est RatioEstimator) (*Series, int, error) {
	sb := NewStitchBuffer(nil)
	defer sb.Release()
	return sb.StitchCounted(prefix, frames, est)
}

// StitchAll folds a left-to-right sequence of overlapping frames into one
// continuous series and renormalizes it to 0–100 — the full reconstruction
// step (§3.2). Frames must be ordered by start time and each must overlap
// its predecessor.
func StitchAll(frames []*Series, est RatioEstimator) (*Series, error) {
	acc, err := StitchFrom(nil, frames, est)
	if err != nil {
		return nil, err
	}
	// The fold's copy-out is owned here, so renormalizing in place skips a
	// full-series clone; the values are identical to Renormalize's.
	return acc.RenormalizeInPlace(), nil
}

// Average returns the pointwise mean of series with identical start and
// length — the sampling-error reduction step: averaging k independent GT
// fetches shrinks the per-point standard error by √k.
func Average(series []*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, ErrEmpty
	}
	dst := make([]float64, series[0].Len())
	if err := AverageInto(dst, series); err != nil {
		return nil, err
	}
	return &Series{start: series[0].start, values: dst}, nil
}

// ConsensusAverage returns the pointwise mean of series of identical
// shape, but zeroes every position that is nonzero in fewer than quorum
// of the inputs. Google Trends' per-request sampling makes near-threshold
// hours flicker between zero and a small count; under a plain mean, one
// lucky draw out of six re-fetches leaves a permanent ghost island that
// the spike detector would count. Requiring a strict majority of fetches
// to agree the hour had measurable volume removes the ghosts while
// leaving genuine surges (nonzero in every sample) untouched.
func ConsensusAverage(series []*Series, quorum int) (*Series, error) {
	if len(series) == 0 {
		return nil, ErrEmpty
	}
	dst := make([]float64, series[0].Len())
	if err := ConsensusAverageInto(dst, series, quorum); err != nil {
		return nil, err
	}
	return &Series{start: series[0].start, values: dst}, nil
}

// Correlation returns the Pearson correlation coefficient between two
// series of identical shape, or 0 when either side is constant. The
// convergence and averaging tests use it to verify reconstruction fidelity
// against ground truth.
func Correlation(a, b *Series) (float64, error) {
	if !a.start.Equal(b.start) || a.Len() != b.Len() {
		return 0, ErrShape
	}
	ma, mb := stats.Mean(a.values), stats.Mean(b.values)
	var cov, va, vb float64
	for i := range a.values {
		da, db := a.values[i]-ma, b.values[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(va*vb), nil
}

// Partition splits [from, to) into consecutive frames of frameLen hours
// that overlap their predecessor by overlap hours — SIFT's request plan
// (workflow step 2). The last frame is shifted left, if necessary, so it
// ends exactly at to; thus frames may overlap by more than overlap hours
// at the tail. from and to must be aligned; the range must be at least
// frameLen hours; overlap must be in [1, frameLen).
type FrameSpec struct {
	Start time.Time
	Hours int
}

// Partition returns the frame plan. See type FrameSpec.
func Partition(from, to time.Time, frameLen, overlap int) ([]FrameSpec, error) {
	if !Aligned(from) || !Aligned(to) {
		return nil, ErrMisaligned
	}
	if frameLen <= 0 || overlap <= 0 || overlap >= frameLen {
		return nil, errors.New("timeseries: need 0 < overlap < frameLen")
	}
	total := int(to.Sub(from) / Step)
	if total < frameLen {
		return nil, fmt.Errorf("timeseries: range of %d h shorter than one %d h frame", total, frameLen)
	}
	stride := frameLen - overlap
	var specs []FrameSpec
	for off := 0; ; off += stride {
		if off+frameLen >= total {
			// Final frame: align its end with the range end.
			specs = append(specs, FrameSpec{Start: from.Add(time.Duration(total-frameLen) * Step), Hours: frameLen})
			break
		}
		specs = append(specs, FrameSpec{Start: from.Add(time.Duration(off) * Step), Hours: frameLen})
	}
	// Drop a duplicate tail frame (possible when the range is an exact
	// multiple of the stride).
	if n := len(specs); n >= 2 && specs[n-1].Start.Equal(specs[n-2].Start) {
		specs = specs[:n-1]
	}
	return specs, nil
}

// MergeMax overlays series (same shape) taking the pointwise maximum.
// The area analysis uses it to build a national envelope for display.
func MergeMax(series []*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, ErrEmpty
	}
	out := series[0].Clone()
	for _, s := range series[1:] {
		if !s.start.Equal(out.start) || s.Len() != out.Len() {
			return nil, ErrShape
		}
		for i, v := range s.values {
			if v > out.values[i] {
				out.values[i] = v
			}
		}
	}
	return out, nil
}

// Hours converts a duration to whole hours, rounding toward zero.
func Hours(d time.Duration) int { return int(d / Step) }

// SortSpecs orders frame specs by start time (stable), for merging plans.
func SortSpecs(specs []FrameSpec) {
	sort.SliceStable(specs, func(i, j int) bool { return specs[i].Start.Before(specs[j].Start) })
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}
