package timeseries

import (
	"sync"
	"sync/atomic"
)

// arenaSmallCap is the class boundary of the arena: buffers up to this
// capacity (weekly frames are 168 hours, daily frames 24) recycle through
// the small pool, longer buffers (full-study accumulations, tens of
// thousands of hours) through the large one. Splitting the classes keeps a
// study-length request from evicting frame-sized buffers and vice versa.
const arenaSmallCap = 512

// Arena recycles the float64 backing buffers of the destination-passing
// kernels through two size-classed sync.Pools. A convergence round churns
// through hundreds of frame-sized slices that all die within the round;
// routing them through the arena turns that churn into a handful of
// steady-state buffers. The zero value is ready to use, all methods are
// safe for concurrent use, and a nil *Arena routes to DefaultArena().
type Arena struct {
	small sync.Pool
	large sync.Pool
	gets  atomic.Uint64
	hits  atomic.Uint64
	puts  atomic.Uint64
}

// defaultArena is the process-wide arena shared by the package-level
// kernels and every pipeline that does not bring its own.
var defaultArena = NewArena()

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// DefaultArena returns the process-wide shared arena.
func DefaultArena() *Arena { return defaultArena }

func (a *Arena) orDefault() *Arena {
	if a == nil {
		return defaultArena
	}
	return a
}

// Get returns a buffer of length n with undefined contents. Callers that
// need zeros use GetZeroed. Return the buffer with Put when done.
func (a *Arena) Get(n int) []float64 {
	a = a.orDefault()
	a.gets.Add(1)
	pool := &a.small
	if n > arenaSmallCap {
		pool = &a.large
	}
	if v, _ := pool.Get().(*[]float64); v != nil && cap(*v) >= n {
		a.hits.Add(1)
		return (*v)[:n]
	}
	// Miss: allocate fresh. Small-class buffers are allocated at the class
	// cap so any later frame-sized request fits them.
	c := n
	if c < arenaSmallCap {
		c = arenaSmallCap
	}
	return make([]float64, n, c)
}

// GetZeroed is Get with the buffer cleared.
func (a *Arena) GetZeroed(n int) []float64 {
	buf := a.Get(n)
	clear(buf)
	return buf
}

// Put returns a buffer to the arena for reuse. The caller must not touch
// the slice afterwards.
func (a *Arena) Put(buf []float64) {
	a = a.orDefault()
	if cap(buf) == 0 {
		return
	}
	a.puts.Add(1)
	buf = buf[:0]
	if cap(buf) <= arenaSmallCap {
		a.small.Put(&buf)
	} else {
		a.large.Put(&buf)
	}
}

// ArenaStats is a point-in-time snapshot of an arena's counters.
type ArenaStats struct {
	// Gets counts buffer requests; Hits the subset served by recycling a
	// pooled buffer (the rest allocated fresh). Puts counts returns.
	Gets, Hits, Puts uint64
}

// HitRate returns Hits/Gets, or 0 before the first Get.
func (s ArenaStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Stats snapshots the arena's counters.
func (a *Arena) Stats() ArenaStats {
	a = a.orDefault()
	return ArenaStats{Gets: a.gets.Load(), Hits: a.hits.Load(), Puts: a.puts.Load()}
}
