package timeseries

import (
	"fmt"
	"time"

	"sift/internal/stats"
)

// This file holds the allocation-lean, destination-passing variants of the
// package's hot kernels. The immutable API (Scale, Average, Renormalize,
// StitchFrom...) is a thin wrapper over these; the pipeline calls them
// directly with arena-recycled buffers so a convergence round reuses one
// scratch buffer per state instead of allocating per frame per round. Every
// kernel performs the same floating-point operations in the same order as
// the legacy allocating path (pinned byte-identical by the property tests
// against the ...Ref oracles in oracle.go).

// Adopt wraps values in a Series without copying. The caller must not
// mutate the slice afterwards except through kernels that the caller
// itself drives (the pipeline overwrites its adopted merge buffers each
// round before anything else observes them).
func Adopt(start time.Time, values []float64) (*Series, error) {
	if !Aligned(start) {
		return nil, fmt.Errorf("%w: %v", ErrMisaligned, start)
	}
	return &Series{start: start.UTC(), values: values}, nil
}

// MustAdopt is Adopt for inputs known to be valid; it panics otherwise.
func MustAdopt(start time.Time, values []float64) *Series {
	s, err := Adopt(start, values)
	if err != nil {
		panic(err)
	}
	return s
}

// RawValues returns the series' backing slice without copying. The slice
// is read-only: mutating it breaks the immutability every consumer of a
// Series assumes. Use Values for an owned copy.
func (s *Series) RawValues() []float64 { return s.values }

// ScaleInto writes s scaled by f into dst, which must have the series'
// length. dst may alias the series' own backing slice (each position is
// read before it is written).
func (s *Series) ScaleInto(dst []float64, f float64) error {
	if len(dst) != len(s.values) {
		return ErrShape
	}
	for i, v := range s.values {
		dst[i] = v * f
	}
	return nil
}

// RenormalizeInPlace rescales the series in place so its maximum becomes
// 100, leaving an all-zero (or empty) series untouched, and returns s.
// Only call it on a series the caller owns outright.
func (s *Series) RenormalizeInPlace() *Series {
	max, _, err := stats.Max(s.values)
	if err != nil || max <= 0 {
		return s
	}
	f := 100 / max
	for i := range s.values {
		s.values[i] *= f
	}
	return s
}

// AverageInto writes the pointwise mean of series into dst, which must
// have the common length. dst may alias any input's backing slice: the
// kernel runs position-major, reading every input at a position before
// writing it, so the additions happen in the same order as the legacy
// series-major accumulation and the result is bit-identical.
func AverageInto(dst []float64, series []*Series) error {
	if err := checkShapes(dst, series); err != nil {
		return err
	}
	k := float64(len(series))
	for i := range dst {
		acc := 0.0
		for _, s := range series {
			acc += s.values[i]
		}
		dst[i] = acc / k
	}
	return nil
}

// ConsensusAverageInto is AverageInto under the presence quorum of
// ConsensusAverage: positions nonzero in fewer than quorum inputs become
// zero. dst may alias an input's backing slice.
func ConsensusAverageInto(dst []float64, series []*Series, quorum int) error {
	if err := checkShapes(dst, series); err != nil {
		return err
	}
	k := float64(len(series))
	for i := range dst {
		acc := 0.0
		present := 0
		for _, s := range series {
			v := s.values[i]
			acc += v
			if v > 0 {
				present++
			}
		}
		v := acc / k
		if quorum > 1 && present < quorum {
			v = 0
		}
		dst[i] = v
	}
	return nil
}

// checkShapes validates the common shape of an Into-kernel call: at least
// one input, every input sharing the first's start and length, and dst
// sized to match.
func checkShapes(dst []float64, series []*Series) error {
	if len(series) == 0 {
		return ErrEmpty
	}
	first := series[0]
	if len(dst) != first.Len() {
		return ErrShape
	}
	for _, s := range series {
		if !s.start.Equal(first.start) || s.Len() != first.Len() {
			return ErrShape
		}
	}
	return nil
}

// overlapRatioRaw is OverlapRatioAnchored over a raw accumulation buffer:
// a covers [accStart, accStart+len(a)h). It streams the overlap window
// directly off the two backings instead of materializing copies, keeping
// the exact accumulation order of the legacy path.
func overlapRatioRaw(accStart time.Time, a []float64, b *Series, est RatioEstimator) (ratio float64, anchored bool, err error) {
	aEnd := accStart.Add(time.Duration(len(a)) * Step)
	lo := maxTime(accStart, b.start)
	hi := minTime(aEnd, b.End())
	if !lo.Before(hi) {
		return 0, false, ErrNoOverlap
	}
	n := int(hi.Sub(lo) / Step)
	ai := int(lo.Sub(accStart) / Step)
	bi := int(lo.Sub(b.start) / Step)
	switch est {
	case RatioOfMeans:
		var sa, sb float64
		for i := 0; i < n; i++ {
			sa += a[ai+i]
			sb += b.values[bi+i]
		}
		if sa <= 0 || sb <= 0 {
			return 1, false, nil
		}
		return sa / sb, true, nil
	case MeanOfRatios:
		var sum float64
		count := 0
		for i := 0; i < n; i++ {
			va, vb := a[ai+i], b.values[bi+i]
			if va > 0 && vb > 0 {
				sum += va / vb
				count++
			}
		}
		if count == 0 {
			return 1, false, nil
		}
		return sum / float64(count), true, nil
	case MedianOfRatios:
		var ratios []float64
		for i := 0; i < n; i++ {
			va, vb := a[ai+i], b.values[bi+i]
			if va > 0 && vb > 0 {
				ratios = append(ratios, va/vb)
			}
		}
		if len(ratios) == 0 {
			return 1, false, nil
		}
		m, err := stats.Median(ratios)
		if err != nil {
			return 1, false, nil
		}
		return m, true, nil
	default:
		return 0, false, fmt.Errorf("timeseries: unknown estimator %v", est)
	}
}

// StitchBuffer folds frame sequences into one reusable, arena-backed
// accumulation buffer, copying the result out exactly once per fold. A
// legacy fold clones the whole accumulation at every seam — O(frames²)
// values copied per state per round; the buffer fold appends each frame's
// scaled suffix in place. Not safe for concurrent use; give each worker
// its own.
type StitchBuffer struct {
	arena *Arena
	buf   []float64
}

// NewStitchBuffer returns an empty stitch buffer drawing from a (nil uses
// DefaultArena). Call Release when done to return the backing to the
// arena.
func NewStitchBuffer(a *Arena) *StitchBuffer {
	return &StitchBuffer{arena: a.orDefault()}
}

// Release returns the backing buffer to the arena. The StitchBuffer
// remains usable; the next fold will draw a fresh backing.
func (sb *StitchBuffer) Release() {
	sb.arena.Put(sb.buf)
	sb.buf = nil
}

// grow extends the buffer to length n, preserving current contents.
func (sb *StitchBuffer) grow(n int) {
	old := sb.buf
	if cap(old) >= n {
		sb.buf = old[:n]
		return
	}
	c := 2 * cap(old)
	if c < n {
		c = n
	}
	nb := sb.arena.Get(c)[:n]
	copy(nb, old)
	sb.arena.Put(old)
	sb.buf = nb
}

// StitchCounted folds frames onto prefix with the semantics — and the
// exact arithmetic — of StitchFromCounted, accumulating into the reusable
// buffer. The returned series owns a fresh copy of the result, so it is
// safe to retain (the stitch memo does) while the buffer is reused for
// the next fold.
func (sb *StitchBuffer) StitchCounted(prefix *Series, frames []*Series, est RatioEstimator) (*Series, int, error) {
	if prefix == nil && len(frames) == 0 {
		return nil, 0, ErrEmpty
	}
	var accStart time.Time
	n := 0
	if prefix != nil {
		accStart = prefix.start
		n = prefix.Len()
		sb.grow(n)
		copy(sb.buf, prefix.values)
	}
	unanchored := 0
	for _, f := range frames {
		if n == 0 {
			// Empty accumulation: the frame is adopted wholesale, trivially
			// anchored — there is no seam to estimate across.
			accStart = f.start
			n = f.Len()
			sb.grow(n)
			copy(sb.buf, f.values)
			continue
		}
		if f.start.Before(accStart) {
			return nil, unanchored, ErrOrder
		}
		ratio, anchored, err := overlapRatioRaw(accStart, sb.buf[:n], f, est)
		if err != nil {
			return nil, unanchored, err
		}
		if !anchored {
			unanchored++
		}
		accEnd := accStart.Add(time.Duration(n) * Step)
		if f.End().After(accEnd) {
			j0 := int(accEnd.Sub(f.start) / Step)
			add := f.Len() - j0
			sb.grow(n + add)
			for j := j0; j < len(f.values); j++ {
				sb.buf[n+j-j0] = f.values[j] * ratio
			}
			n += add
		}
	}
	vals := make([]float64, n)
	copy(vals, sb.buf[:n])
	return &Series{start: accStart, values: vals}, unanchored, nil
}

// allZero reports whether every value is exactly zero.
func allZero(values []float64) bool {
	for _, v := range values {
		if v != 0 {
			return false
		}
	}
	return true
}

// StitchCalibrated folds frames onto prefix like StitchCounted, but
// frames that know their own scale in anchor units (scales[i] > 0, from a
// calibrated fetch) are rescaled directly onto the accumulation's scale
// instead of estimating each seam from its overlap. The fold maintains
// the factor g mapping anchor units onto accumulation units: the first
// frame that ties the two (a wholesale adoption, or an overlap-estimated
// seam whose frame is anchored) establishes g, and every later anchored
// frame joins at ratio g·scaleᵢ — no overlap signal required, which is
// what drives the unanchored-seam count to zero on anchored plans. Frames
// without a usable scale fall back to the overlap estimator exactly as
// StitchCounted does. All-zero frames are vacuous: zeros join at any
// scale, so they neither consume an unanchored count nor perturb g.
//
// scales must have one entry per frame; NaN or non-positive entries mean
// "no anchor scale". rescaled counts the seams joined by pure
// calibration. The returned series owns a fresh copy of the result.
func (sb *StitchBuffer) StitchCalibrated(prefix *Series, frames []*Series, scales []float64, est RatioEstimator) (s *Series, unanchored, rescaled int, err error) {
	if len(scales) != len(frames) {
		return nil, 0, 0, ErrShape
	}
	if prefix == nil && len(frames) == 0 {
		return nil, 0, 0, ErrEmpty
	}
	var accStart time.Time
	n := 0
	accAllZero := true
	if prefix != nil {
		accStart = prefix.start
		n = prefix.Len()
		sb.grow(n)
		copy(sb.buf, prefix.values)
		accAllZero = allZero(prefix.values)
	}
	g := 0.0 // accumulation units per anchor unit; 0 = not yet established
	for k, f := range frames {
		scale := scales[k]
		if scale != scale || scale < 0 { // NaN or negative: no anchor
			scale = 0
		}
		if n == 0 {
			// Empty accumulation: the frame is adopted wholesale, trivially
			// anchored; if it knows its anchor scale, it fixes g for the
			// whole fold.
			accStart = f.start
			n = f.Len()
			sb.grow(n)
			copy(sb.buf, f.values)
			if scale > 0 {
				g = 1 / scale
			}
			accAllZero = accAllZero && allZero(f.values)
			continue
		}
		if f.start.Before(accStart) {
			return nil, unanchored, rescaled, ErrOrder
		}
		fZero := allZero(f.values)
		ratio := 1.0
		switch {
		case fZero:
			// Vacuous: appending zeros is scale-free.
		case accAllZero:
			// Nothing but silence so far: the frame restarts the scale
			// exactly like a wholesale adoption would.
			if scale > 0 {
				g = 1 / scale
			}
			accAllZero = false
		case g > 0 && scale > 0:
			ratio = g * scale
			rescaled++
		default:
			var anchored bool
			ratio, anchored, err = overlapRatioRaw(accStart, sb.buf[:n], f, est)
			if err != nil {
				return nil, unanchored, rescaled, err
			}
			if !anchored {
				unanchored++
			} else if scale > 0 {
				// The overlap tied the accumulation's scale to this frame's
				// own, and the frame knows its own scale in anchor units:
				// from here on anchored frames calibrate directly.
				g = ratio / scale
			}
		}
		accEnd := accStart.Add(time.Duration(n) * Step)
		if f.End().After(accEnd) {
			j0 := int(accEnd.Sub(f.start) / Step)
			add := f.Len() - j0
			sb.grow(n + add)
			for j := j0; j < len(f.values); j++ {
				sb.buf[n+j-j0] = f.values[j] * ratio
			}
			n += add
		}
	}
	vals := make([]float64, n)
	copy(vals, sb.buf[:n])
	return &Series{start: accStart, values: vals}, unanchored, rescaled, nil
}
