package timeseries

import (
	"testing"
	"time"
)

// The anchored flag must expose the ratio-1 fallback without changing the
// numbers: OverlapRatioAnchored agrees with OverlapRatio on every
// estimator, for both live and dead overlaps.
func TestOverlapRatioAnchoredPinsNumbers(t *testing.T) {
	live := [2]*Series{
		MustNew(t0, []float64{2, 4, 6, 8}),
		MustNew(t0.Add(2*time.Hour), []float64{3, 4, 5, 6}),
	}
	dead := [2]*Series{
		MustNew(t0, []float64{2, 4, 0, 0}),
		MustNew(t0.Add(2*time.Hour), []float64{0, 0, 5, 6}),
	}
	for _, est := range []RatioEstimator{RatioOfMeans, MeanOfRatios, MedianOfRatios} {
		for name, pair := range map[string][2]*Series{"live": live, "dead": dead} {
			want, wantErr := OverlapRatio(pair[0], pair[1], est)
			got, anchored, err := OverlapRatioAnchored(pair[0], pair[1], est)
			if got != want || (err == nil) != (wantErr == nil) {
				t.Errorf("%v/%s: anchored variant diverged: ratio %v vs %v", est, name, got, want)
			}
			if name == "dead" && anchored {
				t.Errorf("%v: no-signal overlap reported as anchored", est)
			}
			if name == "live" && !anchored {
				t.Errorf("%v: live overlap reported as unanchored", est)
			}
			if name == "dead" && got != 1 {
				t.Errorf("%v: no-signal fallback ratio = %v, want 1", est, got)
			}
		}
	}
}

// StitchFromCounted must produce byte-identical series to StitchFrom —
// the unanchored count is observability, not a behaviour change.
func TestStitchFromCountedPinsNumbers(t *testing.T) {
	frames := []*Series{
		MustNew(t0, []float64{1, 2, 3, 4}),
		MustNew(t0.Add(3*time.Hour), []float64{8, 10, 12, 14}),
		// Dead overlap with the accumulation: forces the ratio-1 fallback.
		MustNew(t0.Add(6*time.Hour), []float64{0, 7, 9, 11}),
		MustNew(t0.Add(9*time.Hour), []float64{11, 5, 4, 2}),
	}
	for _, est := range []RatioEstimator{RatioOfMeans, MeanOfRatios, MedianOfRatios} {
		want, wantErr := StitchFrom(nil, frames, est)
		got, unanchored, err := StitchFromCounted(nil, frames, est)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("%v: error divergence: %v vs %v", est, err, wantErr)
		}
		if err != nil {
			continue
		}
		if !got.Equal(want) {
			t.Errorf("%v: counted stitch diverged from plain stitch", est)
		}
		if unanchored == 0 {
			t.Errorf("%v: dead seam not counted", est)
		}
	}

	// A fold whose every overlap carries signal counts zero.
	healthy := []*Series{
		MustNew(t0, []float64{1, 2, 3, 4}),
		MustNew(t0.Add(3*time.Hour), []float64{8, 10, 12, 14}),
	}
	if _, n, err := StitchFromCounted(nil, healthy, RatioOfMeans); err != nil || n != 0 {
		t.Errorf("healthy fold: unanchored = %d (err %v), want 0", n, err)
	}
}
