package crawlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"sift/internal/obs"
	"sift/internal/store"
)

// Phase is a unit's lifecycle position in the queue.
type Phase string

const (
	// Pending units are waiting for a worker.
	Pending Phase = "pending"
	// Leased units are held by a worker until the lease expires or the
	// worker completes, releases, or removes them.
	Leased Phase = "leased"
	// Done units are terminal: their frame exists (in a cache shard or
	// the persisted store) and they are never refetched.
	Done Phase = "done"
)

// DefaultLeaseTTL bounds how long a dead worker's units stay stuck: a
// survivor steals an expired lease on its next acquire. Long enough that
// a healthy fetch plus retries never expires mid-flight (workers also
// renew at TTL/3), short enough that a kill heals quickly.
const DefaultLeaseTTL = 30 * time.Second

// entry is one unit's queue record.
type entry struct {
	unit     Unit
	phase    Phase
	worker   string    // lease holder when phase == Leased
	expiry   time.Time // lease expiry when phase == Leased
	attempts int       // times the unit has been leased
}

// queueObs holds the queue's metric handles.
type queueObs struct {
	events obs.CounterVec // sift_crawlplane_lease_events_total{event}
	depth  obs.GaugeVec   // sift_crawlplane_queue_depth{phase}
	held   obs.GaugeVec   // sift_crawlplane_leases_held{worker}
}

func newQueueObs(r *obs.Registry) queueObs {
	return queueObs{
		events: r.CounterVec("sift_crawlplane_lease_events_total",
			"lease-queue transitions by event", "event"),
		depth: r.GaugeVec("sift_crawlplane_queue_depth",
			"work units in the lease queue by phase", "phase"),
		held: r.GaugeVec("sift_crawlplane_leases_held",
			"live leases currently held per worker", "worker"),
	}
}

// Queue is the plane's lease-based work queue: units are added once,
// leased to workers with an expiry, renewed while a fetch runs, and
// marked done exactly when their frame exists. A lease that expires —
// the holder was killed, hung, or partitioned — makes the unit stealable
// by any worker; a live (unexpired) lease is never handed to a second
// worker. All methods take explicit clocks so tests drive expiry
// deterministically. Safe for concurrent use.
type Queue struct {
	mu      sync.Mutex
	ttl     time.Duration
	entries map[string]*entry
	// order is the deterministic scan sequence over non-terminal units
	// (insertion order). Keys whose entries finish or vanish are compacted
	// away lazily as scans pass them, keeping Acquire amortized O(1) even
	// after tens of thousands of completions.
	order    []string
	doneKeys []string // terminal units, in completion order (persistence)
	held     map[string]int
	// phase populations, maintained incrementally so Counts and the depth
	// gauges never walk the entry map.
	npend, nleased, ndone int
	dirty                 bool
	om                    queueObs
}

// NewQueue returns an empty queue with the given lease TTL; ttl <= 0
// takes DefaultLeaseTTL.
func NewQueue(ttl time.Duration) *Queue {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &Queue{
		ttl:     ttl,
		entries: make(map[string]*entry),
		held:    make(map[string]int),
		om:      newQueueObs(nil),
	}
}

// WithMetrics redirects the queue's counters into r, returning the queue
// for chaining. Call before first use.
func (q *Queue) WithMetrics(r *obs.Registry) *Queue {
	q.mu.Lock()
	q.om = newQueueObs(r)
	q.mu.Unlock()
	return q
}

// TTL returns the lease TTL.
func (q *Queue) TTL() time.Duration { return q.ttl }

// Add enqueues the unit if it is not already tracked. added reports a
// fresh pending entry; done reports that the unit is already terminal
// (the caller should find its frame in a shard cache or the store, and
// Reopen the unit if it cannot).
func (q *Queue) Add(u Unit) (added, done bool) {
	key := u.Key()
	q.mu.Lock()
	defer q.mu.Unlock()
	if e, ok := q.entries[key]; ok {
		return false, e.phase == Done
	}
	q.entries[key] = &entry{unit: u, phase: Pending}
	q.order = append(q.order, key)
	q.npend++
	q.dirty = true
	q.updateDepth()
	return true, false
}

// Reopen returns a done unit to pending — the resume path for a unit
// whose completion outlived its frame (cache eviction, a lost store).
// Reports whether the unit existed and was done.
func (q *Queue) Reopen(key string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[key]
	if !ok || e.phase != Done {
		return false
	}
	e.phase = Pending
	e.worker = ""
	q.ndone--
	q.npend++
	for i, k := range q.doneKeys {
		if k == key {
			q.doneKeys = append(q.doneKeys[:i], q.doneKeys[i+1:]...)
			break
		}
	}
	q.order = append(q.order, key)
	q.dirty = true
	q.om.events.With("reopened").Inc()
	q.updateDepth()
	return true
}

// Acquire leases the next available unit to worker: first a unit the
// worker owns (owns(unit) true — its consistent-hash shard), then, when
// its own shard is drained, any other available unit (work stealing).
// Available means pending, or leased with an expiry at or before now —
// an expired lease is reclaimed in place, never double-assigned while
// live. stolen reports that the unit was taken from another worker's
// expired lease or foreign shard.
func (q *Queue) Acquire(worker string, now time.Time, owns func(Unit) bool) (u Unit, ok, stolen bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if owns != nil {
		if e, expired := q.scan(now, owns); e != nil {
			return q.lease(e, worker, now, expired), true, expired
		}
	}
	if e, expired := q.scan(now, nil); e != nil {
		foreign := owns != nil && !owns(e.unit)
		return q.lease(e, worker, now, expired || foreign), true, expired || foreign
	}
	return Unit{}, false, false
}

// scan returns the first available entry matching the filter (nil = any)
// and whether its availability comes from an expired lease. The traversed
// prefix is compacted in place: keys whose entries finished or were
// removed drop out of the scan order for good, so repeated acquires never
// re-walk completed work. Caller holds q.mu.
func (q *Queue) scan(now time.Time, match func(Unit) bool) (found *entry, expired bool) {
	w, i := 0, 0
	for ; i < len(q.order); i++ {
		key := q.order[i]
		e := q.entries[key]
		if e == nil || e.phase == Done {
			continue // compacted away
		}
		q.order[w] = key
		w++
		if match != nil && !match(e.unit) {
			continue
		}
		switch e.phase {
		case Pending:
			found, expired = e, false
		case Leased:
			if !e.expiry.After(now) {
				found, expired = e, true
			}
		}
		if found != nil {
			i++
			break
		}
	}
	if w < i {
		q.order = append(q.order[:w], q.order[i:]...)
	}
	return found, expired
}

// lease assigns e to worker under q.mu, accounting the transition.
func (q *Queue) lease(e *entry, worker string, now time.Time, stolen bool) Unit {
	if e.phase == Leased {
		// Reclaiming an expired lease: the previous holder is charged the
		// expiry here, where it is observed.
		q.om.events.With("expired").Inc()
		q.decHeld(e.worker)
	} else {
		q.npend--
		q.nleased++
	}
	e.phase = Leased
	e.worker = worker
	e.expiry = now.Add(q.ttl)
	e.attempts++
	q.dirty = true
	q.om.events.With("acquired").Inc()
	if stolen {
		q.om.events.With("stolen").Inc()
	}
	q.held[worker]++
	q.om.held.With(worker).Set(float64(q.held[worker]))
	q.updateDepth()
	return e.unit
}

// Renew extends worker's lease on key to now+TTL. Reports false when the
// worker no longer holds the lease (expired and stolen, completed, or
// removed) — the fetch's result will be discarded, so the worker should
// abandon it.
func (q *Queue) Renew(worker, key string, now time.Time) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[key]
	if !ok || e.phase != Leased || e.worker != worker {
		return false
	}
	e.expiry = now.Add(q.ttl)
	q.om.events.With("renewed").Inc()
	return true
}

// Complete marks worker's leased unit done. Reports false when the
// worker no longer holds the lease; completion of a stolen unit is the
// thief's to declare.
func (q *Queue) Complete(worker, key string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[key]
	if !ok || e.phase != Leased || e.worker != worker {
		return false
	}
	e.phase = Done
	q.decHeld(worker)
	e.worker = ""
	q.nleased--
	q.ndone++
	q.doneKeys = append(q.doneKeys, key)
	q.dirty = true
	q.om.events.With("completed").Inc()
	q.updateDepth()
	return true
}

// Release returns worker's leased unit to pending — the graceful path
// for transient failure or drain.
func (q *Queue) Release(worker, key string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[key]
	if !ok || e.phase != Leased || e.worker != worker {
		return false
	}
	e.phase = Pending
	q.decHeld(worker)
	e.worker = ""
	q.nleased--
	q.npend++
	q.dirty = true
	q.om.events.With("released").Inc()
	q.updateDepth()
	return true
}

// Remove drops worker's leased unit entirely — the permanent-failure
// path: the error was delivered to the unit's waiter, and a later round
// that still wants the window re-adds it.
func (q *Queue) Remove(worker, key string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[key]
	if !ok || e.phase != Leased || e.worker != worker {
		return false
	}
	q.decHeld(worker)
	delete(q.entries, key)
	q.nleased--
	q.dirty = true
	q.om.events.With("removed").Inc()
	q.updateDepth()
	return true
}

// ReleaseWorker returns every lease held by worker to pending — the
// graceful-drain path (a SIGKILLed worker never calls this; its leases
// expire instead). Returns how many leases were released.
func (q *Queue) ReleaseWorker(worker string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, e := range q.entries {
		if e.phase == Leased && e.worker == worker {
			e.phase = Pending
			e.worker = ""
			n++
			q.nleased--
			q.npend++
			q.om.events.With("released").Inc()
		}
	}
	if n > 0 {
		q.held[worker] = 0
		q.om.held.With(worker).Set(0)
		q.dirty = true
		q.updateDepth()
	}
	return n
}

// Counts snapshots the queue's per-phase populations.
func (q *Queue) Counts() (pending, leased, done int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.npend, q.nleased, q.ndone
}

// DepthFor counts pending or expired-leased units matching owns — a
// worker's effective backlog, fed to the per-worker depth gauge. Cost is
// proportional to the live (non-done) population.
func (q *Queue) DepthFor(now time.Time, owns func(Unit) bool) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, key := range q.order {
		e := q.entries[key]
		if e == nil || e.phase == Done {
			continue
		}
		if owns != nil && !owns(e.unit) {
			continue
		}
		if e.phase == Pending || (e.phase == Leased && !e.expiry.After(now)) {
			n++
		}
	}
	return n
}

// Holder reports the live lease on key, if any — diagnostic and
// property-test surface.
func (q *Queue) Holder(key string, now time.Time) (worker string, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, found := q.entries[key]
	if !found || e.phase != Leased || !e.expiry.After(now) {
		return "", false
	}
	return e.worker, true
}

// decHeld decrements worker's held-lease gauge under q.mu.
func (q *Queue) decHeld(worker string) {
	if q.held[worker] > 0 {
		q.held[worker]--
	}
	q.om.held.With(worker).Set(float64(q.held[worker]))
}

// updateDepth refreshes the phase gauges under q.mu.
func (q *Queue) updateDepth() {
	q.om.depth.With("pending").Set(float64(q.npend))
	q.om.depth.With("leased").Set(float64(q.nleased))
	q.om.depth.With("done").Set(float64(q.ndone))
}

// ---- persistence ----

// queueFile is the persisted JSON layout. Leases are deliberately not
// persisted: a lease names a worker goroutine in a process that no
// longer exists, so leased units load as pending — the crash-resume
// equivalent of an instant expiry.
type queueFile struct {
	Version int             `json:"version"`
	Units   []queueFileUnit `json:"units"`
}

type queueFileUnit struct {
	Unit     Unit `json:"unit"`
	Done     bool `json:"done"`
	Attempts int  `json:"attempts,omitempty"`
}

// Save persists the queue to path through the store's atomic
// temp+fsync+rename path, clearing the dirty flag. Entry order is
// preserved so a resumed queue scans in the same sequence.
func (q *Queue) Save(path string) error {
	q.mu.Lock()
	qf := queueFile{Version: 1}
	// Active units in scan order first; done entries come from doneKeys
	// (a just-completed key may still sit uncompacted in order — it is
	// skipped there, never emitted twice).
	for _, key := range q.order {
		e := q.entries[key]
		if e == nil || e.phase == Done {
			continue
		}
		qf.Units = append(qf.Units, queueFileUnit{Unit: e.unit, Attempts: e.attempts})
	}
	for _, key := range q.doneKeys {
		if e := q.entries[key]; e != nil && e.phase == Done {
			qf.Units = append(qf.Units, queueFileUnit{Unit: e.unit, Done: true, Attempts: e.attempts})
		}
	}
	q.dirty = false
	q.mu.Unlock()
	data, err := json.Marshal(qf)
	if err != nil {
		return fmt.Errorf("crawlplane: encoding queue: %w", err)
	}
	return store.WriteFileAtomic(path, data)
}

// Dirty reports whether mutations happened since the last Save.
func (q *Queue) Dirty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dirty
}

// LoadQueue reads a queue persisted by Save. A missing file returns an
// empty queue — first boot and resume share one call.
func LoadQueue(path string, ttl time.Duration) (*Queue, error) {
	q := NewQueue(ttl)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return q, nil
	}
	if err != nil {
		return nil, fmt.Errorf("crawlplane: reading queue: %w", err)
	}
	var qf queueFile
	if err := json.Unmarshal(data, &qf); err != nil {
		return nil, fmt.Errorf("crawlplane: decoding queue: %w", err)
	}
	if qf.Version != 1 {
		return nil, errors.New("crawlplane: unsupported queue file version")
	}
	for _, fu := range qf.Units {
		key := fu.Unit.Key()
		if _, ok := q.entries[key]; ok {
			continue
		}
		phase := Pending
		if fu.Done {
			phase = Done
		}
		q.entries[key] = &entry{unit: fu.Unit, phase: phase, attempts: fu.Attempts}
		if fu.Done {
			q.doneKeys = append(q.doneKeys, key)
			q.ndone++
		} else {
			q.order = append(q.order, key)
			q.npend++
		}
	}
	q.updateDepth()
	return q, nil
}

// DoneCount returns how many units are terminal — the resume statistic.
func (q *Queue) DoneCount() int {
	_, _, done := q.Counts()
	return done
}
