package crawlplane

import (
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring mapping unit keys onto worker shards.
// Each worker owns VNodes points on the ring, so the (state × window)
// unit space partitions roughly evenly and adding or removing one worker
// moves only ~1/N of the units — the property that keeps cache shards
// warm across plane resizes. The ring is immutable after construction.
type Ring struct {
	points  []ringPoint // sorted by hash
	workers int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultVNodes is the virtual-node count per worker used when a caller
// passes a non-positive value.
const DefaultVNodes = 128

// NewRing builds a ring over workers shards with vnodes points each;
// vnodes <= 0 takes DefaultVNodes.
func NewRing(workers, vnodes int) *Ring {
	if workers < 1 {
		workers = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{workers: workers}
	r.points = make([]ringPoint, 0, workers*vnodes)
	for w := 0; w < workers; w++ {
		for v := 0; v < vnodes; v++ {
			h := mix64(hash64("shard-" + strconv.Itoa(w) + "-vnode-" + strconv.Itoa(v)))
			r.points = append(r.points, ringPoint{hash: h, shard: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break deterministically so the mapping is total order, not
		// construction order.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Workers returns the number of shards on the ring.
func (r *Ring) Workers() int { return r.workers }

// Owner returns the shard index owning key: the first ring point at or
// after the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) int {
	h := mix64(hash64(key))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// mix64 is the splitmix64 finalizer: FNV-1a over short, similar strings
// (sequential vnode labels, neighbouring window starts) leaves its low
// bits correlated, which skews ring placement badly; the finalizer
// scrambles every bit so shard loads stay within a few percent of even.
// Stable across processes, like hash64.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hash64 is FNV-1a over s — dependency-free, stable across processes and
// Go versions, which the persisted queue's shard affinity relies on.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
