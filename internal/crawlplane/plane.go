package crawlplane

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"sift/internal/engine"
	"sift/internal/gtrends"
	"sift/internal/obs"
	"sift/internal/store"
	"sift/internal/trace"
)

// DefaultUnitWorkers is each crawl worker's local fetch concurrency (its
// engine.Scheduler slot count) when the config leaves it zero.
const DefaultUnitWorkers = 4

// DefaultUnitRetries matches the pipeline's default in-round fetch
// retries: transient failures and invalid frames re-fetch twice before a
// unit's failure is declared permanent.
const DefaultUnitRetries = 2

// DefaultSaveEvery is the background persistence cadence for a plane
// with a state path.
const DefaultSaveEvery = time.Second

// queueFileName and framesFileName are the two files a stateful plane
// keeps under Config.StatePath.
const (
	queueFileName  = "queue.json"
	framesFileName = "frames.json"
)

// Config parameterizes a Plane.
type Config struct {
	// Workers is the crawler-worker count; <= 0 means 1.
	Workers int
	// Fetcher is the frame fetcher shared by every worker when NewFetcher
	// is nil. If it implements gtrends.KeyedFetcher the plane keys each
	// unit's sample draw off the unit's identity, making crawl results
	// independent of worker count and fetch order.
	Fetcher gtrends.Fetcher
	// NewFetcher, when set, builds worker i's private fetcher — the hook
	// for per-worker gtclient pools against a live service.
	NewFetcher func(worker int) gtrends.Fetcher
	// LeaseTTL bounds how long a dead worker's units stay assigned;
	// <= 0 takes DefaultLeaseTTL.
	LeaseTTL time.Duration
	// UnitWorkers is each worker's local fetch concurrency; <= 0 takes
	// DefaultUnitWorkers.
	UnitWorkers int
	// CacheSize is each worker's FrameCache shard capacity (entries);
	// <= 0 takes engine.DefaultCacheSize.
	CacheSize int
	// Retries is the in-unit re-fetch budget for transient failures;
	// 0 takes DefaultUnitRetries, negative means none.
	Retries int
	// VNodes is the consistent-hash virtual-node count per worker;
	// <= 0 takes DefaultVNodes.
	VNodes int
	// StatePath, when non-empty, is the directory the plane persists its
	// queue and completed frames under (queue.json, frames.json) and
	// resumes from on construction.
	StatePath string
	// SaveEvery is the background persistence cadence when StatePath is
	// set; <= 0 takes DefaultSaveEvery.
	SaveEvery time.Duration
	// Metrics selects the registry the plane reports into; nil uses
	// obs.Default().
	Metrics *obs.Registry
	// Tracer, when non-nil, roots each worker's crawlplane.worker span.
	Tracer *trace.Tracer
}

// unitResult is what a waiter receives when its unit settles.
type unitResult struct {
	frame *gtrends.Frame
	err   error
}

// planeObs holds the plane's metric handles (the queue carries its own).
type planeObs struct {
	workers     obs.Gauge      // sift_crawlplane_workers
	units       obs.CounterVec // sift_crawlplane_units_total{outcome}
	workerDepth obs.GaugeVec   // sift_crawlplane_worker_depth{worker}
	unitSecs    obs.Histogram  // sift_crawlplane_unit_seconds
	retries     obs.CounterVec // sift_engine_source_retries_total{reason}
}

func newPlaneObs(r *obs.Registry) planeObs {
	return planeObs{
		workers: r.Gauge("sift_crawlplane_workers", "crawl-plane worker count"),
		units: r.CounterVec("sift_crawlplane_units_total",
			"crawl work units by outcome", "outcome"),
		workerDepth: r.GaugeVec("sift_crawlplane_worker_depth",
			"available home-shard units per worker", "worker"),
		unitSecs: r.Histogram("sift_crawlplane_unit_seconds",
			"wall time from unit acquire to settle", nil),
		retries: r.CounterVec("sift_engine_source_retries_total",
			"in-round frame re-fetches by cause", "reason"),
	}
}

// Plane is the sharded, crash-resumable crawl tier: N workers, each with
// its own fetcher, FrameCache shard, and local scheduler, draining a
// shared lease queue of (state × window × round) units. It plugs into
// the processing pipeline as an engine.FrameSource (and CachedSource /
// AsyncFrameSource), so stitching and detection consume completed
// windows asynchronously while the fetch tier crawls.
type Plane struct {
	cfg    Config
	ring   *Ring
	queue  *Queue
	caches []*engine.FrameCache
	scheds []*engine.Scheduler
	fetch  []gtrends.Fetcher
	om     planeObs

	mu      sync.Mutex
	waiters map[string][]chan unitResult
	db      *store.DB // completed frames, persisted under StatePath

	wake    []chan struct{}
	cancels []context.CancelFunc
	wg      sync.WaitGroup
	root    context.Context
	stopAll context.CancelFunc
	drain   chan struct{} // closed by Close: stop acquiring
	closed  sync.Once
	saverWG sync.WaitGroup
}

// New builds the plane, resumes any persisted state under
// cfg.StatePath, and starts its workers. Close releases them.
func New(cfg Config) (*Plane, error) {
	if cfg.Fetcher == nil && cfg.NewFetcher == nil {
		return nil, errors.New("crawlplane: config needs a Fetcher or NewFetcher")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.UnitWorkers <= 0 {
		cfg.UnitWorkers = DefaultUnitWorkers
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultUnitRetries
	}
	if cfg.SaveEvery <= 0 {
		cfg.SaveEvery = DefaultSaveEvery
	}

	p := &Plane{
		cfg:     cfg,
		ring:    NewRing(cfg.Workers, cfg.VNodes),
		om:      newPlaneObs(cfg.Metrics),
		waiters: make(map[string][]chan unitResult),
		drain:   make(chan struct{}),
	}

	// Resume: the persisted queue (leases load as pending — the dead
	// process's workers are gone) plus the completed frames, primed into
	// their owner shards so done units never refetch.
	if cfg.StatePath != "" {
		q, err := LoadQueue(filepath.Join(cfg.StatePath, queueFileName), cfg.LeaseTTL)
		if err != nil {
			return nil, err
		}
		p.queue = q.WithMetrics(cfg.Metrics)
		db, err := store.Load(filepath.Join(cfg.StatePath, framesFileName))
		if err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				return nil, err
			}
			db = store.New()
		}
		p.db = db
	} else {
		p.queue = NewQueue(cfg.LeaseTTL).WithMetrics(cfg.Metrics)
		p.db = store.New()
	}

	for i := 0; i < cfg.Workers; i++ {
		cache := engine.NewFrameCache(cfg.CacheSize).
			WithShard("shard-"+strconv.Itoa(i), cfg.Metrics)
		p.caches = append(p.caches, cache)
		p.scheds = append(p.scheds, engine.NewScheduler(cfg.UnitWorkers))
		if cfg.NewFetcher != nil {
			p.fetch = append(p.fetch, cfg.NewFetcher(i))
		} else {
			p.fetch = append(p.fetch, cfg.Fetcher)
		}
		p.wake = append(p.wake, make(chan struct{}, 1))
	}
	p.primeFromDB()
	if resumed := p.queue.DoneCount(); resumed > 0 {
		p.om.units.With("resumed").Add(float64(resumed))
	}
	p.om.workers.Set(float64(cfg.Workers))

	p.root, p.stopAll = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		wctx, cancel := context.WithCancel(p.root)
		p.cancels = append(p.cancels, cancel)
		p.wg.Add(1)
		go p.worker(wctx, i)
	}
	if cfg.StatePath != "" {
		p.saverWG.Add(1)
		go p.saver()
	}
	return p, nil
}

// primeFromDB loads every persisted frame into its owner's cache shard.
func (p *Plane) primeFromDB() {
	p.db.EachFrame(func(round int, f *gtrends.Frame) {
		u := Unit{
			Term:   f.Term,
			State:  f.State,
			Start:  f.Start.UTC(),
			Hours:  len(f.Points),
			Round:  round,
			Rising: len(f.Rising) > 0,
		}
		p.caches[p.ring.Owner(u.ShardKey())].Prime(round, f)
	})
}

// Workers returns the worker count.
func (p *Plane) Workers() int { return p.cfg.Workers }

// Queue exposes the lease queue (tests, diagnostics).
func (p *Plane) Queue() *Queue { return p.queue }

// ShardStats snapshots every worker's cache shard.
func (p *Plane) ShardStats() []engine.CacheStats {
	out := make([]engine.CacheStats, len(p.caches))
	for i, c := range p.caches {
		out[i] = c.Stats()
	}
	return out
}

// AsyncFetch marks the plane as scheduling its own fetch concurrency;
// the reported parallelism is the plane-wide slot total.
func (p *Plane) AsyncFetch() int { return p.cfg.Workers * p.cfg.UnitWorkers }

// FetchFrame implements engine.FrameSource.
func (p *Plane) FetchFrame(ctx context.Context, req gtrends.FrameRequest, round int) (*gtrends.Frame, error) {
	f, _, err := p.FetchFrameCached(ctx, req, round)
	return f, err
}

// FetchFrameCached implements engine.CachedSource: a frame already in
// its owner shard is a hit; otherwise the request becomes a queued unit
// and the call blocks until a worker settles it (or ctx is done).
func (p *Plane) FetchFrameCached(ctx context.Context, req gtrends.FrameRequest, round int) (*gtrends.Frame, bool, error) {
	u := UnitOf(req, round)
	key := engine.KeyOf(req, round)
	owner := p.ring.Owner(u.ShardKey())
	if f, ok := p.caches[owner].Get(key); ok {
		return f, true, nil
	}
	ch := make(chan unitResult, 1)
	ukey := u.Key()
	p.addWaiter(ukey, ch)
	// Re-check after registering: a worker that completed the unit
	// between our miss and addWaiter put the frame before delivering, so
	// one of the two paths always observes it.
	if f, ok := p.caches[owner].Get(key); ok {
		p.dropWaiter(ukey, ch)
		return f, true, nil
	}
	if _, done := p.queue.Add(u); done {
		// Done but not resident: the frame was evicted (or its store
		// lost). Reopen for a refetch — with a keyed fetcher the redraw
		// is bit-identical.
		p.queue.Reopen(ukey)
	}
	p.wakeAll()
	select {
	case r := <-ch:
		return r.frame, false, r.err
	case <-ctx.Done():
		p.dropWaiter(ukey, ch)
		return nil, false, ctx.Err()
	}
}

// addWaiter registers ch for key's settlement.
func (p *Plane) addWaiter(key string, ch chan unitResult) {
	p.mu.Lock()
	p.waiters[key] = append(p.waiters[key], ch)
	p.mu.Unlock()
}

// dropWaiter deregisters ch.
func (p *Plane) dropWaiter(key string, ch chan unitResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	chs := p.waiters[key]
	for i, c := range chs {
		if c == ch {
			p.waiters[key] = append(chs[:i:i], chs[i+1:]...)
			break
		}
	}
	if len(p.waiters[key]) == 0 {
		delete(p.waiters, key)
	}
}

// deliver settles key for every current waiter.
func (p *Plane) deliver(key string, f *gtrends.Frame, err error) {
	p.mu.Lock()
	chs := p.waiters[key]
	delete(p.waiters, key)
	p.mu.Unlock()
	for _, ch := range chs {
		ch <- unitResult{frame: f, err: err}
	}
}

// wakeAll nudges every worker's acquire loop.
func (p *Plane) wakeAll() {
	for _, ch := range p.wake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// worker is one crawler: acquire home-shard units first, steal when
// drained, fetch through the owner's cache shard, renew the lease while
// fetching, and settle the unit's waiters.
func (p *Plane) worker(ctx context.Context, i int) {
	defer p.wg.Done()
	name := "worker-" + strconv.Itoa(i)
	wctx, span := trace.StartOrRoot(ctx, p.cfg.Tracer, "crawlplane.worker",
		trace.Int("worker", i))
	defer span.End()
	owns := func(u Unit) bool { return p.ring.Owner(u.ShardKey()) == i }

	// The poll interval bounds how late an expired lease is noticed, so a
	// kill heals well within one TTL.
	poll := p.queue.TTL() / 4
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	timer := time.NewTimer(poll)
	defer timer.Stop()

	units := 0
	for {
		if ctx.Err() != nil {
			span.SetAttr(trace.Int("units", units))
			return
		}
		select {
		case <-p.drain:
			span.SetAttr(trace.Int("units", units))
			return
		default:
		}
		now := time.Now()
		u, ok, stolen := p.queue.Acquire(name, now, owns)
		if !ok {
			// Only the idle path pays for the backlog gauge: when the
			// worker is saturated its depth is changing every few
			// milliseconds anyway, and the scan is not free.
			p.om.workerDepth.With(name).Set(float64(p.queue.DepthFor(now, owns)))
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(poll)
			select {
			case <-ctx.Done():
			case <-p.drain:
			case <-p.wake[i]:
			case <-timer.C:
			}
			continue
		}
		p.runUnit(wctx, i, name, u, stolen)
		units++
	}
}

// runUnit executes one leased unit to settlement.
func (p *Plane) runUnit(ctx context.Context, i int, name string, u Unit, stolen bool) {
	began := time.Now()
	uctx, span := trace.Start(ctx, "crawlplane.unit",
		trace.Str("unit", u.String()), trace.Bool("stolen", stolen))
	defer span.End()
	ukey := u.Key()

	if err := p.scheds[i].Acquire(uctx); err != nil {
		// Worker shutting down before the slot freed: leave the lease to
		// expire (a killed worker does no cleanup); graceful drain
		// releases leases wholesale in Close.
		span.SetError(err)
		return
	}
	defer p.scheds[i].Release()

	// Renew the lease at TTL/3 while the fetch runs, so only a dead or
	// wedged worker's leases ever expire.
	renewCtx, stopRenew := context.WithCancel(uctx)
	defer stopRenew()
	go func() {
		tick := time.NewTicker(p.queue.TTL() / 3)
		defer tick.Stop()
		for {
			select {
			case <-renewCtx.Done():
				return
			case <-tick.C:
				if !p.queue.Renew(name, ukey, time.Now()) {
					return
				}
			}
		}
	}()

	// Fetch through the OWNER's shard even for stolen units: one shard
	// per (state × window) keeps singleflight dedup and hit accounting
	// coherent no matter which worker runs the unit.
	owner := p.ring.Owner(u.ShardKey())
	key := engine.KeyOf(u.Request(), u.Round)
	f, _, err := p.caches[owner].GetOrFetch(uctx, key, func(fctx context.Context) (*gtrends.Frame, error) {
		return p.fetchUnit(fctx, i, u)
	})
	stopRenew()
	p.om.unitSecs.Observe(time.Since(began).Seconds())

	switch {
	case err == nil:
		if p.queue.Complete(name, ukey) {
			p.om.units.With("completed").Inc()
			p.db.AddFrame(u.Round, f)
		}
		// Deliver regardless of lease ownership: the frame is valid and
		// resident, and deliver is idempotent (second settle finds no
		// waiters).
		p.deliver(ukey, f, nil)
	case uctx.Err() != nil:
		// Our own cancellation (kill or shutdown): no cleanup — the lease
		// expires and a survivor steals the unit. That asymmetry is the
		// crash-consistency model, not an oversight.
		span.SetError(err)
	case isCancellation(err):
		// A coalesced flight died under its original fetcher (that
		// worker was killed mid-fetch). The unit itself is fine — return
		// it to pending for a fresh attempt.
		span.SetError(err)
		if p.queue.Release(name, ukey) {
			p.wakeAll()
		}
	default:
		// Permanent failure: only the lease holder declares it, so a
		// stolen unit's outcome is the thief's to report.
		span.SetError(err)
		if p.queue.Remove(name, ukey) {
			p.om.units.With("failed").Inc()
			p.deliver(ukey, nil, err)
		}
	}
}

// fetchUnit performs the unit's fetch on worker i's fetcher with bounded
// retries, mirroring engine.RetryingSource, and keyed sampling when the
// fetcher supports it.
func (p *Plane) fetchUnit(ctx context.Context, i int, u Unit) (*gtrends.Frame, error) {
	req := u.Request()
	retries := p.cfg.Retries
	if retries < 0 {
		retries = 0
	}
	kf, keyed := p.fetch[i].(gtrends.KeyedFetcher)
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var f *gtrends.Frame
		var err error
		if keyed {
			f, err = kf.FetchFrameKeyed(ctx, req, u.SampleKey())
		} else {
			f, err = p.fetch[i].FetchFrame(ctx, req)
		}
		if err == nil {
			if verr := gtrends.ValidateFrame(f, req); verr != nil {
				lastErr = verr
				if attempt < retries {
					p.om.retries.With("invalid").Inc()
					trace.FromContext(ctx).Event("source.retry",
						trace.Str("reason", "invalid"), trace.Int("attempt", attempt+1))
				}
				continue
			}
			return f, nil
		}
		lastErr = err
		if !gtrends.IsTransient(err) {
			break
		}
		if attempt < retries {
			p.om.retries.With("transient").Inc()
			trace.FromContext(ctx).Event("source.retry",
				trace.Str("reason", "transient"), trace.Int("attempt", attempt+1))
		}
	}
	return nil, lastErr
}

// isCancellation reports whether err is context cancellation or expiry.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// KillWorker cancels worker i's context without releasing its leases —
// the SIGKILL simulation for chaos tests. Its units become stealable
// when their leases expire; survivors heal the plane within one TTL.
func (p *Plane) KillWorker(i int) {
	if i >= 0 && i < len(p.cancels) {
		p.cancels[i]()
	}
}

// saver persists the queue and frames store on a fixed cadence.
func (p *Plane) saver() {
	defer p.saverWG.Done()
	tick := time.NewTicker(p.cfg.SaveEvery)
	defer tick.Stop()
	for {
		select {
		case <-p.root.Done():
			return
		case <-p.drain:
			return
		case <-tick.C:
			p.persist()
		}
	}
}

// persist writes both state files; errors are recorded on the default
// trace span path only (the periodic saver has no caller to return to —
// Close's final persist does).
func (p *Plane) persist() error {
	if p.cfg.StatePath == "" {
		return nil
	}
	var first error
	if p.queue.Dirty() {
		if err := p.queue.Save(filepath.Join(p.cfg.StatePath, queueFileName)); err != nil {
			first = err
		}
	}
	if err := p.db.Save(filepath.Join(p.cfg.StatePath, framesFileName)); err != nil && first == nil {
		first = err
	}
	return first
}

// Close drains the plane: workers stop acquiring, finish their in-flight
// units, release their remaining leases, and the final state is
// persisted. ctx bounds the drain — on expiry in-flight work is
// cancelled hard and the plane still persists what settled.
func (p *Plane) Close(ctx context.Context) error {
	var err error
	p.closed.Do(func() {
		close(p.drain)
		p.wakeAll()
		done := make(chan struct{})
		go func() {
			p.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			p.stopAll()
			<-done
		}
		p.saverWG.Wait()
		p.stopAll()
		for i := range p.cancels {
			p.queue.ReleaseWorker("worker-" + strconv.Itoa(i))
		}
		err = p.persist()
	})
	return err
}
