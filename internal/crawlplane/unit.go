// Package crawlplane is SIFT's sharded, crash-resumable crawl tier: the
// (state × window × round) fetch work-unit space is partitioned by
// consistent hashing onto N crawler workers, coordinated through a
// lease-based work queue persisted in the store's atomic
// temp+fsync+rename path. Each worker owns its own fetcher (a gtclient
// pool against a live service, or the in-process engine) and its own
// engine.FrameCache shard; a killed worker's leases expire and survivors
// steal its units, resuming from persisted frames without refetching
// completed windows. The plane plugs into the processing pipeline as an
// engine.FrameSource, so the stitch/detect tier consumes completed
// windows asynchronously while the fetch tier crawls — the distributed
// successor of the single bounded engine.Scheduler, which lives on as
// each worker's local concurrency policy.
package crawlplane

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sift/internal/geo"
	"sift/internal/gtrends"
)

// Unit is one crawl work unit: fetch one (term, state, window) frame for
// one averaging round. Units are the granularity of leasing, sharding,
// and resume — a completed unit is never refetched.
type Unit struct {
	Term   string    `json:"term"`
	State  geo.State `json:"state"`
	Start  time.Time `json:"start"`
	Hours  int       `json:"hours"`
	Round  int       `json:"round"`
	Rising bool      `json:"rising,omitempty"`
	// Anchor is the calibration anchor query the unit's fetch carries;
	// an anchored fetch is a distinct unit from the plain fetch of the
	// same coordinate (different response shape, different sample key).
	Anchor string `json:"anchor,omitempty"`
}

// UnitOf builds the unit for a frame request in a given round.
func UnitOf(req gtrends.FrameRequest, round int) Unit {
	return Unit{
		Term:   req.Term,
		State:  req.State,
		Start:  req.Start.UTC(),
		Hours:  req.Hours,
		Round:  round,
		Rising: req.WithRising,
		Anchor: req.Anchor,
	}
}

// Request reconstructs the frame request the unit fetches.
func (u Unit) Request() gtrends.FrameRequest {
	return gtrends.FrameRequest{
		Term:       u.Term,
		State:      u.State,
		Start:      u.Start,
		Hours:      u.Hours,
		WithRising: u.Rising,
		Anchor:     u.Anchor,
	}
}

// Key is the unit's canonical identity: the string the queue indexes by,
// the ring hashes for shard ownership, and the persisted form's map key.
// Terms cannot contain '|' in this system's vocabulary, but the window
// ordinal encoding keeps the key unambiguous even if one did.
func (u Unit) Key() string {
	var b strings.Builder
	b.Grow(len(u.Term) + 32)
	b.WriteString(strconv.FormatInt(u.Start.UTC().Unix(), 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(u.Hours))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(u.Round))
	b.WriteByte('|')
	if u.Rising {
		b.WriteByte('r')
	}
	b.WriteByte('|')
	b.WriteString(string(u.State))
	b.WriteByte('|')
	b.WriteString(u.Term)
	// Anchored units append a suffix segment; plain units keep the
	// historical key form, so persisted queues from unanchored crawls
	// stay addressable.
	if u.Anchor != "" {
		b.WriteString("|a|")
		b.WriteString(u.Anchor)
	}
	return b.String()
}

// ShardKey is the consistent-hashing coordinate: the (state × window)
// pair only, so every round of the same window lands on the same worker
// and its cache shard sees all of that window's draws.
func (u Unit) ShardKey() string {
	return strconv.FormatInt(u.Start.UTC().Unix(), 10) + "|" + strconv.Itoa(u.Hours) +
		"|" + string(u.State) + "|" + u.Term
}

// SampleKey derives the deterministic sampling key the plane passes to a
// gtrends.KeyedFetcher: a pure function of the unit's identity, so any
// worker fetching the unit — first owner, lease thief after a crash, a
// plane of one worker or eight — draws the same sample. Rounds stay in
// the key, so averaging keeps its independent draws per round.
func (u Unit) SampleKey() uint64 { return hash64("sample|" + u.Key()) }

// String renders the unit for spans and logs.
func (u Unit) String() string {
	return fmt.Sprintf("%s/%s %s+%dh r%d", u.Term, u.State,
		u.Start.UTC().Format("2006-01-02T15"), u.Hours, u.Round)
}
