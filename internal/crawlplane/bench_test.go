package crawlplane

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"sift/internal/geo"
	"sift/internal/gtrends"
)

// benchFetcher models a remote Trends backend: every fetch pays a fixed
// RTT and returns a minimal valid frame. Sleep-bound work makes the
// scaling measurement reflect the plane's concurrency structure rather
// than the host's core count.
type benchFetcher struct{ rtt time.Duration }

func (f benchFetcher) FetchFrame(ctx context.Context, req gtrends.FrameRequest) (*gtrends.Frame, error) {
	select {
	case <-time.After(f.rtt):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &gtrends.Frame{
		Term:   req.Term,
		State:  req.State,
		Start:  req.Start.UTC(),
		Points: make([]int, req.Hours),
	}, nil
}

// planeThroughput measures units/sec for one worker count: each
// iteration pushes a fixed batch of distinct units (fresh rounds per
// iteration, so nothing is ever a cache hit) through the plane and waits
// for all of them.
func planeThroughput(b *testing.B, workers int) float64 {
	const batch = 96
	states := geo.Codes()
	p, err := New(Config{
		Workers:     workers,
		Fetcher:     benchFetcher{rtt: time.Millisecond},
		LeaseTTL:    10 * time.Second,
		UnitWorkers: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close(context.Background())

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		for i := 0; i < batch; i++ {
			req := gtrends.FrameRequest{
				Term:  fmt.Sprintf("bench term %d", i%12),
				State: states[i%len(states)],
				Start: qt0.Add(time.Duration(i/12) * 24 * time.Hour),
				Hours: 24,
			}
			wg.Add(1)
			go func(req gtrends.FrameRequest) {
				defer wg.Done()
				// Round = iteration + 1 keys every batch to fresh units.
				if _, err := p.FetchFrame(context.Background(), req, n+1); err != nil {
					b.Error(err)
				}
			}(req)
		}
		wg.Wait()
	}
	b.StopTimer()
	ups := float64(batch) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(ups, "units/sec")
	return ups
}

// BenchmarkCrawlPlane measures unit throughput at 1, 2, and 4 workers.
// The workers=4 sub-benchmark also reports scale_x — its throughput over
// the workers=1 run of the same invocation — which cmd/benchguard gates
// against BENCH_BASELINE.json (≥ 2.5× required). The ratio is robust to
// machine speed in a way raw units/sec is not.
func BenchmarkCrawlPlane(b *testing.B) {
	var base float64
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ups := planeThroughput(b, workers)
			if workers == 1 {
				base = ups
			} else if base > 0 {
				b.ReportMetric(ups/base, "scale_x")
			}
		})
	}
}
