package crawlplane

import (
	"path/filepath"
	"testing"
	"time"

	"sift/internal/geo"
)

var qt0 = time.Date(2021, 2, 15, 0, 0, 0, 0, time.UTC)

func unitN(n int) Unit {
	states := geo.Codes()
	return Unit{
		Term:  "internet outage",
		State: states[n%len(states)],
		Start: qt0.Add(time.Duration(n/len(states)) * 168 * time.Hour),
		Hours: 168,
		Round: 1,
	}
}

func TestQueueAcquireLifecycle(t *testing.T) {
	q := NewQueue(time.Minute)
	u := unitN(0)
	if added, done := q.Add(u); !added || done {
		t.Fatalf("Add = (%v, %v), want (true, false)", added, done)
	}
	if added, _ := q.Add(u); added {
		t.Fatal("second Add of the same unit should dedup")
	}
	now := qt0
	got, ok, stolen := q.Acquire("w0", now, nil)
	if !ok || stolen || got.Key() != u.Key() {
		t.Fatalf("Acquire = (%v, %v, %v)", got, ok, stolen)
	}
	// Live lease: nobody else can take it.
	if _, ok, _ := q.Acquire("w1", now.Add(time.Second), nil); ok {
		t.Fatal("second Acquire handed out a live lease")
	}
	if w, held := q.Holder(u.Key(), now.Add(time.Second)); !held || w != "w0" {
		t.Fatalf("Holder = (%q, %v), want (w0, true)", w, held)
	}
	if !q.Complete("w0", u.Key()) {
		t.Fatal("Complete by the holder failed")
	}
	if _, done := q.Add(u); !done {
		t.Fatal("Add after Complete should report done")
	}
	if p, l, d := q.Counts(); p != 0 || l != 0 || d != 1 {
		t.Fatalf("Counts = (%d, %d, %d), want (0, 0, 1)", p, l, d)
	}
}

func TestQueueExpiredLeaseIsStolen(t *testing.T) {
	q := NewQueue(time.Minute)
	u := unitN(0)
	q.Add(u)
	if _, ok, _ := q.Acquire("w0", qt0, nil); !ok {
		t.Fatal("initial acquire failed")
	}
	// Before expiry: unavailable. At/after expiry: stealable.
	if _, ok, _ := q.Acquire("w1", qt0.Add(59*time.Second), nil); ok {
		t.Fatal("lease stolen before expiry")
	}
	got, ok, stolen := q.Acquire("w1", qt0.Add(time.Minute), nil)
	if !ok || !stolen || got.Key() != u.Key() {
		t.Fatalf("expired acquire = (%v, %v, %v), want steal", got, ok, stolen)
	}
	// The original holder's lease is gone: its renew and complete fail.
	if q.Renew("w0", u.Key(), qt0.Add(61*time.Second)) {
		t.Fatal("Renew succeeded on a stolen lease")
	}
	if q.Complete("w0", u.Key()) {
		t.Fatal("Complete succeeded on a stolen lease")
	}
	if !q.Complete("w1", u.Key()) {
		t.Fatal("thief's Complete failed")
	}
}

func TestQueueRenewExtendsLease(t *testing.T) {
	q := NewQueue(time.Minute)
	u := unitN(0)
	q.Add(u)
	q.Acquire("w0", qt0, nil)
	if !q.Renew("w0", u.Key(), qt0.Add(50*time.Second)) {
		t.Fatal("Renew by holder failed")
	}
	// Renewed at +50s → expires +110s; +70s must still be held.
	if _, ok, _ := q.Acquire("w1", qt0.Add(70*time.Second), nil); ok {
		t.Fatal("renewed lease was stolen")
	}
	if _, ok, _ := q.Acquire("w1", qt0.Add(110*time.Second), nil); !ok {
		t.Fatal("lease not stealable after renewed expiry")
	}
}

func TestQueueHomeShardPreference(t *testing.T) {
	q := NewQueue(time.Minute)
	ring := NewRing(2, 0)
	var mine, other Unit
	for n := 0; ; n++ {
		u := unitN(n)
		if ring.Owner(u.ShardKey()) == 0 && mine.Term == "" {
			mine = u
		}
		if ring.Owner(u.ShardKey()) == 1 && other.Term == "" {
			other = u
		}
		if mine.Term != "" && other.Term != "" {
			break
		}
	}
	// Enqueue the foreign unit first: scan order alone would hand it out.
	q.Add(other)
	q.Add(mine)
	owns := func(u Unit) bool { return ring.Owner(u.ShardKey()) == 0 }
	got, ok, stolen := q.Acquire("w0", qt0, owns)
	if !ok || got.Key() != mine.Key() || stolen {
		t.Fatalf("Acquire preferred %v (stolen=%v), want home unit %v", got, stolen, mine)
	}
	// Home shard drained → the foreign unit is stolen.
	got, ok, stolen = q.Acquire("w0", qt0, owns)
	if !ok || got.Key() != other.Key() || !stolen {
		t.Fatalf("Acquire = (%v, %v, %v), want foreign steal", got, ok, stolen)
	}
}

func TestQueueReleaseAndRemove(t *testing.T) {
	q := NewQueue(time.Minute)
	a, b := unitN(0), unitN(1)
	q.Add(a)
	q.Add(b)
	q.Acquire("w0", qt0, nil)
	q.Acquire("w0", qt0, nil)
	if !q.Release("w0", a.Key()) {
		t.Fatal("Release failed")
	}
	if p, l, _ := q.Counts(); p != 1 || l != 1 {
		t.Fatalf("after Release: pending=%d leased=%d", p, l)
	}
	if !q.Remove("w0", b.Key()) {
		t.Fatal("Remove failed")
	}
	if p, l, d := q.Counts(); p != 1 || l != 0 || d != 0 {
		t.Fatalf("after Remove: (%d, %d, %d)", p, l, d)
	}
	// A removed unit can be re-added fresh.
	if added, done := q.Add(b); !added || done {
		t.Fatal("re-Add after Remove failed")
	}
}

func TestQueueReleaseWorkerFreesAllLeases(t *testing.T) {
	q := NewQueue(time.Minute)
	for n := 0; n < 4; n++ {
		q.Add(unitN(n))
	}
	q.Acquire("w0", qt0, nil)
	q.Acquire("w0", qt0, nil)
	q.Acquire("w1", qt0, nil)
	if n := q.ReleaseWorker("w0"); n != 2 {
		t.Fatalf("ReleaseWorker = %d, want 2", n)
	}
	if p, l, _ := q.Counts(); p != 3 || l != 1 {
		t.Fatalf("after ReleaseWorker: pending=%d leased=%d", p, l)
	}
}

func TestQueueReopen(t *testing.T) {
	q := NewQueue(time.Minute)
	u := unitN(0)
	q.Add(u)
	q.Acquire("w0", qt0, nil)
	q.Complete("w0", u.Key())
	if !q.Reopen(u.Key()) {
		t.Fatal("Reopen of a done unit failed")
	}
	if q.Reopen(u.Key()) {
		t.Fatal("Reopen of a pending unit succeeded")
	}
	if _, ok, _ := q.Acquire("w1", qt0, nil); !ok {
		t.Fatal("reopened unit not acquirable")
	}
}

func TestQueuePersistenceRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.json")
	q := NewQueue(time.Minute)
	done, leased, pending := unitN(0), unitN(1), unitN(2)
	q.Add(done)
	q.Add(leased)
	q.Add(pending)
	q.Acquire("w0", qt0, nil) // leases unitN(0)
	q.Complete("w0", done.Key())
	q.Acquire("w0", qt0, nil) // leases unitN(1)
	if !q.Dirty() {
		t.Fatal("mutated queue should be dirty")
	}
	if err := q.Save(path); err != nil {
		t.Fatal(err)
	}
	if q.Dirty() {
		t.Fatal("saved queue should be clean")
	}

	got, err := LoadQueue(path, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// The lease named a worker in a dead process: it loads as pending.
	p, l, d := got.Counts()
	if p != 2 || l != 0 || d != 1 {
		t.Fatalf("loaded Counts = (%d, %d, %d), want (2, 0, 1)", p, l, d)
	}
	if added, isDone := got.Add(done); added || !isDone {
		t.Fatal("done unit did not survive the roundtrip")
	}
	// Scan order survives: the previously leased unit comes out first.
	u, ok, _ := got.Acquire("w0", qt0, nil)
	if !ok || u.Key() != leased.Key() {
		t.Fatalf("first loaded acquire = %v, want %v", u, leased)
	}
}

func TestLoadQueueMissingFile(t *testing.T) {
	q, err := LoadQueue(filepath.Join(t.TempDir(), "absent.json"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p, l, d := q.Counts(); p+l+d != 0 {
		t.Fatal("missing file should load an empty queue")
	}
	if q.TTL() != DefaultLeaseTTL {
		t.Fatalf("TTL = %v, want default", q.TTL())
	}
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	a, b := NewRing(4, 0), NewRing(4, 0)
	counts := make([]int, 4)
	for n := 0; n < 1000; n++ {
		u := unitN(n)
		oa, ob := a.Owner(u.ShardKey()), b.Owner(u.ShardKey())
		if oa != ob {
			t.Fatalf("ring not deterministic for %v: %d vs %d", u, oa, ob)
		}
		counts[oa]++
	}
	for w, c := range counts {
		if c < 100 || c > 450 {
			t.Fatalf("shard %d owns %d of 1000 units — badly unbalanced: %v", w, c, counts)
		}
	}
	// All rounds of one window share a shard (ShardKey excludes round).
	u1, u2 := unitN(7), unitN(7)
	u2.Round = 9
	if a.Owner(u1.ShardKey()) != a.Owner(u2.ShardKey()) {
		t.Fatal("rounds of the same window map to different shards")
	}
}

func TestUnitKeysAndSampleKey(t *testing.T) {
	u := unitN(3)
	if got := UnitOf(u.Request(), u.Round); got.Key() != u.Key() {
		t.Fatalf("UnitOf∘Request changed the key: %q vs %q", got.Key(), u.Key())
	}
	r := u
	r.Round = 2
	if r.Key() == u.Key() {
		t.Fatal("rounds must have distinct unit keys")
	}
	if r.SampleKey() == u.SampleKey() {
		t.Fatal("rounds must draw independent samples")
	}
	if r.ShardKey() != u.ShardKey() {
		t.Fatal("rounds must share a shard key")
	}
}
