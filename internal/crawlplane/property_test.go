package crawlplane

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"
)

// The lease queue's two safety properties, checked under randomized
// interleavings of acquire / renew / complete / release / remove /
// worker crash / clock advance / crash-and-reload (the RollingSeries
// property-suite style: seeded runs, explicit shadow model):
//
//  1. No double assignment: Acquire never hands out a unit whose
//     current lease is still live (unexpired).
//  2. No orphans: once the dust settles, every unit that was ever added
//     and not permanently removed can still be driven to done.
func TestQueuePropertyRandomInterleavings(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			checkQueueInterleaving(t, seed)
		})
	}
}

// shadowLease is the test's model of one live lease.
type shadowLease struct {
	worker string
	expiry time.Time
}

func checkQueueInterleaving(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const ttl = time.Minute
	dir := t.TempDir()
	path := filepath.Join(dir, "queue.json")

	q := NewQueue(ttl)
	now := qt0

	workers := []string{"w0", "w1", "w2", "w3"}
	alive := map[string]bool{}
	for _, w := range workers {
		alive[w] = true
	}

	nUnits := 20 + rng.Intn(30)
	tracked := map[string]bool{} // key → still owed a completion
	removed := map[string]bool{}
	for n := 0; n < nUnits; n++ {
		u := unitN(n)
		q.Add(u)
		tracked[u.Key()] = true
	}

	leases := map[string]shadowLease{} // key → model of the live lease
	held := map[string][]string{}      // worker → keys it believes it holds

	randHeld := func(w string) (string, bool) {
		keys := held[w]
		if len(keys) == 0 {
			return "", false
		}
		return keys[rng.Intn(len(keys))], true
	}
	dropHeld := func(w, key string) {
		keys := held[w]
		for i, k := range keys {
			if k == key {
				held[w] = append(keys[:i], keys[i+1:]...)
				return
			}
		}
	}
	liveWorkers := func() []string {
		var out []string
		for _, w := range workers {
			if alive[w] {
				out = append(out, w)
			}
		}
		return out
	}

	steps := 400 + rng.Intn(400)
	for step := 0; step < steps; step++ {
		lw := liveWorkers()
		if len(lw) == 0 {
			// Everyone crashed: a fresh worker joins (replacement capacity).
			w := fmt.Sprintf("w%d", len(workers))
			workers = append(workers, w)
			alive[w] = true
			continue
		}
		w := lw[rng.Intn(len(lw))]
		switch op := rng.Intn(100); {
		case op < 30: // acquire
			u, ok, _ := q.Acquire(w, now, nil)
			if !ok {
				continue
			}
			key := u.Key()
			if sl, exists := leases[key]; exists && sl.expiry.After(now) {
				t.Fatalf("step %d: %s acquired %q while %s holds a live lease until %v (now %v)",
					step, w, key, sl.worker, sl.expiry, now)
			}
			if prev, exists := leases[key]; exists {
				dropHeld(prev.worker, key)
			}
			leases[key] = shadowLease{worker: w, expiry: now.Add(ttl)}
			held[w] = append(held[w], key)
		case op < 45: // renew
			if key, ok := randHeld(w); ok {
				if q.Renew(w, key, now) {
					leases[key] = shadowLease{worker: w, expiry: now.Add(ttl)}
				} else {
					// Lost lease (expired and stolen, or reloaded away).
					dropHeld(w, key)
				}
			}
		case op < 65: // complete
			if key, ok := randHeld(w); ok {
				if q.Complete(w, key) {
					tracked[key] = false
					delete(leases, key)
				}
				dropHeld(w, key)
			}
		case op < 72: // release
			if key, ok := randHeld(w); ok {
				if q.Release(w, key) {
					delete(leases, key)
				}
				dropHeld(w, key)
			}
		case op < 77: // remove (permanent failure)
			if key, ok := randHeld(w); ok {
				if q.Remove(w, key) {
					removed[key] = true
					tracked[key] = false
					delete(leases, key)
				}
				dropHeld(w, key)
			}
		case op < 85: // crash: the worker vanishes, no cleanup at all
			alive[w] = false
			held[w] = nil
			// Its shadow leases stay — they must block acquire until expiry.
		case op < 95: // clock advances
			now = now.Add(time.Duration(rng.Intn(int(ttl))))
		default: // process crash: persist, reload, everyone restarts
			if err := q.Save(path); err != nil {
				t.Fatalf("step %d: save: %v", step, err)
			}
			loaded, err := LoadQueue(path, ttl)
			if err != nil {
				t.Fatalf("step %d: load: %v", step, err)
			}
			q = loaded
			// Every lease belonged to the dead process.
			leases = map[string]shadowLease{}
			held = map[string][]string{}
			for _, wk := range workers {
				alive[wk] = true
			}
		}
	}

	// Drain: past every possible expiry, one surviving worker must be able
	// to finish everything that is still owed — no orphans.
	now = now.Add(2 * ttl)
	for i := 0; i < 10*nUnits; i++ {
		u, ok, _ := q.Acquire("drainer", now, nil)
		if !ok {
			break
		}
		if !q.Complete("drainer", u.Key()) {
			t.Fatalf("drain: Complete failed for freshly acquired %q", u.Key())
		}
		tracked[u.Key()] = false
	}
	for key, owed := range tracked {
		if owed && !removed[key] {
			t.Errorf("orphaned unit %q: never completed and no longer acquirable", key)
		}
	}
	if pending, leased, _ := q.Counts(); pending != 0 || leased != 0 {
		t.Errorf("after drain: pending=%d leased=%d, want 0/0", pending, leased)
	}
}
