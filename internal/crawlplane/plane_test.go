package crawlplane

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"sift/internal/core"
	"sift/internal/geo"
	"sift/internal/gtrends"
	"sift/internal/searchmodel"
	"sift/internal/simworld"
)

// testModel builds a deterministic search world with outage events in a
// handful of states, so some (state, term) pairs spike and most stay
// quiet — the shape of a real study.
func testModel(seed int64) *searchmodel.Model {
	events := []*simworld.Event{
		{
			ID: "storm", Name: "Winter storm", Kind: simworld.KindPower,
			Cause: simworld.CauseWinterStorm, Start: qt0.Add(10 * time.Hour), Duration: 20 * time.Hour,
			Impacts: []simworld.Impact{{State: "TX", Intensity: 2000}, {State: "OK", Intensity: 900}},
			Terms:   []simworld.TermWeight{{Term: "power outage", Share: 0.5}, {Term: "winter storm", Share: 0.3}},
		},
		{
			ID: "cut", Name: "Fiber cut", Kind: simworld.KindISP,
			Cause: simworld.CauseUnknown, Start: qt0.Add(20 * time.Hour), Duration: 9 * time.Hour,
			Impacts: []simworld.Impact{{State: "CA", Intensity: 1500}, {State: "WA", Intensity: 700}},
			Terms:   []simworld.TermWeight{{Term: "internet outage", Share: 0.6}},
		},
	}
	return searchmodel.New(seed, simworld.NewTimeline(events), searchmodel.Params{})
}

func testFetcher(seed int64) gtrends.EngineFetcher {
	return gtrends.EngineFetcher{Engine: gtrends.NewEngine(testModel(seed), gtrends.Config{})}
}

// studyTerms builds n study terms: the live vocabulary first, then quiet
// filler terms (real studies carry hundreds of terms, most silent).
func studyTerms(n int) []string {
	terms := []string{gtrends.TopicInternetOutage, "internet outage", "power outage", "winter storm"}
	for i := 0; len(terms) < n; i++ {
		terms = append(terms, fmt.Sprintf("outage term %03d", i))
	}
	return terms[:n]
}

type runKey struct {
	state geo.State
	term  string
}

type runOut struct {
	spikes []core.Spike
	series []float64
}

// crawlStudy runs the (states × terms) study through the plane and
// collects every pair's spikes and series.
func crawlStudy(t testing.TB, p *Plane, states []geo.State, terms []string) map[runKey]runOut {
	t.Helper()
	pipe := &core.Pipeline{Cfg: core.PipelineConfig{
		FrameHours:   24,
		OverlapHours: 6,
		MaxRounds:    2,
		Source:       p,
	}}
	from, to := qt0, qt0.Add(36*time.Hour)

	out := make(map[runKey]runOut, len(states)*len(terms))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 32)
	errs := make(chan error, 1)
	for _, st := range states {
		for _, term := range terms {
			st, term := st, term
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				res, err := pipe.Run(context.Background(), st, term, from, to)
				if err != nil {
					select {
					case errs <- fmt.Errorf("%s/%s: %w", term, st, err):
					default:
					}
					return
				}
				mu.Lock()
				out[runKey{st, term}] = runOut{spikes: res.Spikes, series: res.Series.Values()}
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	return out
}

// requireStudiesEqual asserts two study outcomes are bit-identical.
func requireStudiesEqual(t *testing.T, want, got map[runKey]runOut, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs vs %d", label, len(want), len(got))
	}
	spiky := 0
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Fatalf("%s: missing pair %s/%s", label, key.term, key.state)
		}
		if !core.SpikeSetsEqual(w.spikes, g.spikes, 0) {
			t.Errorf("%s: spike sets differ for %s/%s: %v vs %v",
				label, key.term, key.state, w.spikes, g.spikes)
		}
		if len(w.spikes) > 0 {
			spiky++
		}
		if len(w.series) != len(g.series) {
			t.Fatalf("%s: series lengths differ for %s/%s", label, key.term, key.state)
		}
		for i := range w.series {
			if math.Float64bits(w.series[i]) != math.Float64bits(g.series[i]) {
				t.Fatalf("%s: series bit-diverge for %s/%s at hour %d: %v vs %v",
					label, key.term, key.state, i, w.series[i], g.series[i])
			}
		}
	}
	if spiky == 0 {
		t.Errorf("%s: no pair spiked — the scenario is vacuous", label)
	}
}

// TestPlaneScaledBitIdentical is the acceptance scenario: a 50-state,
// 100-term study produces bit-identical spike sets and series whether
// the plane runs 1 worker or 4 — worker count and fetch interleaving
// must not leak into results (unit-keyed sampling).
func TestPlaneScaledBitIdentical(t *testing.T) {
	states := geo.Codes()[:50]
	nTerms := 100
	if testing.Short() {
		states = geo.Codes()[:12]
		nTerms = 12
	}
	terms := studyTerms(nTerms)

	outcomes := make(map[int]map[runKey]runOut)
	for _, workers := range []int{1, 4} {
		p, err := New(Config{
			Workers:     workers,
			Fetcher:     testFetcher(42),
			LeaseTTL:    10 * time.Second,
			UnitWorkers: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		outcomes[workers] = crawlStudy(t, p, states, terms)
		if err := p.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	requireStudiesEqual(t, outcomes[1], outcomes[4], "workers 1 vs 4")
}

// TestPlaneShardStatsPerWorker covers the per-shard cache visibility:
// every worker's shard carries its own name and sees its own traffic.
func TestPlaneShardStatsPerWorker(t *testing.T) {
	p, err := New(Config{Workers: 3, Fetcher: testFetcher(7), LeaseTTL: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close(context.Background())
	crawlStudy(t, p, geo.Codes()[:9], studyTerms(4))

	stats := p.ShardStats()
	if len(stats) != 3 {
		t.Fatalf("ShardStats returned %d shards, want 3", len(stats))
	}
	var touched int
	for i, s := range stats {
		want := fmt.Sprintf("shard-%d", i)
		if s.Shard != want {
			t.Errorf("shard %d named %q, want %q", i, s.Shard, want)
		}
		if s.Misses > 0 || s.Hits > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Errorf("only %d of 3 shards saw traffic — sharding is not spreading", touched)
	}
}

// delayFetcher injects a fixed latency per fetch — the stand-in for
// network RTT that makes mid-flight kills and throughput scaling real.
// It forwards keyed fetches so results stay order-independent.
type delayFetcher struct {
	inner gtrends.EngineFetcher
	delay time.Duration
}

func (d delayFetcher) FetchFrame(ctx context.Context, req gtrends.FrameRequest) (*gtrends.Frame, error) {
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.inner.FetchFrame(ctx, req)
}

func (d delayFetcher) FetchFrameKeyed(ctx context.Context, req gtrends.FrameRequest, key uint64) (*gtrends.Frame, error) {
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return d.inner.FetchFrameKeyed(ctx, req, key)
}

// TestChaosWorkerKillHealsWithinLeaseTTL kills one of three workers
// mid-crawl (context cancelled, leases abandoned — the SIGKILL model).
// The crawl must still complete, with spike sets bit-identical to a
// fault-free run: survivors steal the dead worker's expired leases and
// unit-keyed sampling redraws the same frames.
func TestChaosWorkerKillHealsWithinLeaseTTL(t *testing.T) {
	states := geo.Codes()[:8]
	terms := studyTerms(6)
	newPlane := func() *Plane {
		p, err := New(Config{
			Workers:     3,
			Fetcher:     delayFetcher{inner: testFetcher(42), delay: 4 * time.Millisecond},
			LeaseTTL:    300 * time.Millisecond,
			UnitWorkers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	clean := newPlane()
	want := crawlStudy(t, clean, states, terms)
	if err := clean.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	faulty := newPlane()
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		// Let the crawl get in flight, then kill a worker that holds leases.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if _, leased, _ := faulty.Queue().Counts(); leased > 0 {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		faulty.KillWorker(1)
	}()
	got := crawlStudy(t, faulty, states, terms)
	<-killed
	if err := faulty.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	requireStudiesEqual(t, want, got, "fault-free vs worker-killed")

	if _, leased, _ := faulty.Queue().Counts(); leased != 0 {
		t.Errorf("leases still held after drain: %d", leased)
	}
}

// TestPlaneResumeSkipsCompletedWindows is the crash-resume contract: a
// plane restarted over its persisted state path serves every completed
// window from the resumed frames and issues zero new fetches for them.
func TestPlaneResumeSkipsCompletedWindows(t *testing.T) {
	dir := t.TempDir()
	fetcher := testFetcher(42) // shared engine: its request counter spans both planes
	states := geo.Codes()[:6]
	terms := studyTerms(5)

	a, err := New(Config{
		Workers:   2,
		Fetcher:   fetcher,
		LeaseTTL:  5 * time.Second,
		StatePath: dir,
		SaveEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := crawlStudy(t, a, states, terms)
	if err := a.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	fetchedOnce := fetcher.Engine.Requests()
	if fetchedOnce == 0 {
		t.Fatal("first crawl issued no fetches")
	}

	b, err := New(Config{
		Workers:   4, // resume even works across a plane resize
		Fetcher:   fetcher,
		LeaseTTL:  5 * time.Second,
		StatePath: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Queue().DoneCount() == 0 {
		t.Fatal("resumed queue lost its completed units")
	}
	got := crawlStudy(t, b, states, terms)
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	if refetched := fetcher.Engine.Requests() - fetchedOnce; refetched != 0 {
		t.Errorf("resume refetched %d frames, want 0", refetched)
	}
	requireStudiesEqual(t, want, got, "original vs resumed")
}
