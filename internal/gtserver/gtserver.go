// Package gtserver exposes the simulated Google Trends engine as an HTTP
// JSON API with per-client rate limiting — the environment the paper's
// data-collection module contends with. The SIFT crawler (internal/
// gtclient) talks to this API exactly as it would to the real service:
// requesting weekly and daily frames, receiving 429s when it hammers one
// source address, and spreading load over fetcher units to compensate.
//
// API:
//
//	GET /api/trends?term=...&state=CA&start=RFC3339&hours=168&rising=1
//	    → 200 gtrends.Frame JSON, 400 on bad parameters, 429 when the
//	      client exceeds its budget (Retry-After header set).
//	GET /api/stats   → service counters (requests, rejections, clients).
//	GET /healthz     → 200 "ok".
//
// Clients are identified by the X-Fetcher-IP header when present (how the
// simulation models fetcher units behind distinct addresses), falling
// back to the connection's remote address.
package gtserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	"sift/internal/faults"
	"sift/internal/geo"
	"sift/internal/gtrends"
	"sift/internal/obs"
	"sift/internal/simworld"
	"sift/internal/trace"
)

// Config tunes the server. Zero fields take the documented defaults.
type Config struct {
	// RatePerSec is each client's sustained request budget. Default 25.
	RatePerSec float64
	// Burst is each client's burst allowance. Default 50.
	Burst int
	// Logger receives request logs; nil disables logging.
	Logger *log.Logger
	// Faults, when set, injects the plan's chaos into /api/trends at the
	// transport level: injected responses are fabricated without touching
	// the Trends engine, so a resilient crawler that retries through them
	// sees exactly the fault-free sample sequence.
	Faults *faults.Injector
	// OnFrame, when set, observes every frame the engine serves — the
	// server-side recording hook (siftd -record). Called synchronously
	// from request handlers after a successful engine fetch, before the
	// response is written; must be safe for concurrent use. Injected
	// fault responses and rejected requests never reach it.
	OnFrame func(f *gtrends.Frame)
	// Pageviews, when set, additionally serves the pageviews-style counts
	// backend on GET /api/pageviews — the secondary signal source the
	// fusion layer falls back to when the Trends side degrades. Pageview
	// dumps are published wholesale, so the endpoint is not rate-limited
	// and not subject to fault injection.
	Pageviews *simworld.Pageviews
	// Metrics selects the registry the server's request and fault
	// counters report into; nil uses obs.Default().
	Metrics *obs.Registry
	// Tracer, when set, records one root span per /api/trends request
	// (attributes: client, state, window, status; fault injections as
	// events). The spans feed siftd's /debug/trace inspector. Nil
	// disables server-side tracing.
	Tracer *trace.Tracer
}

func (c *Config) fillDefaults() {
	if c.RatePerSec == 0 {
		c.RatePerSec = 25
	}
	if c.Burst == 0 {
		c.Burst = 50
	}
}

// Server handles the Trends API. Construct with New; it implements
// http.Handler.
type Server struct {
	engine  *gtrends.Engine
	limiter *Limiter
	cfg     Config
	mux     *http.ServeMux
	om      serverObs
}

// serverObs holds the server's metric handles.
type serverObs struct {
	requests obs.CounterVec // sift_gtserver_requests_total{status}
	faults   obs.CounterVec // sift_gtserver_faults_injected_total{mode}
}

// New builds a Server over an engine.
func New(engine *gtrends.Engine, cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		engine:  engine,
		limiter: NewLimiter(cfg.RatePerSec, cfg.Burst, nil),
		cfg:     cfg,
		mux:     http.NewServeMux(),
		om: serverObs{
			requests: cfg.Metrics.CounterVec("sift_gtserver_requests_total",
				"trends API requests by response status", "status"),
			faults: cfg.Metrics.CounterVec("sift_gtserver_faults_injected_total",
				"chaos faults injected by mode", "mode"),
		},
	}
	s.mux.HandleFunc("GET /api/trends", s.handleTrends)
	if cfg.Pageviews != nil {
		s.mux.HandleFunc("GET /api/pageviews", s.handlePageviews)
	}
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ClientID extracts the client identity for rate limiting: the simulated
// fetcher address when present, else the remote host.
func ClientID(r *http.Request) string {
	if ip := r.Header.Get("X-Fetcher-IP"); ip != "" {
		return ip
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// statsBody reports service counters.
type statsBody struct {
	RequestsServed uint64            `json:"requests_served"`
	RateLimited    uint64            `json:"rate_limited"`
	Clients        int               `json:"clients"`
	FaultsInjected uint64            `json:"faults_injected,omitempty"`
	FaultCounts    map[string]uint64 `json:"fault_counts,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	body := statsBody{
		RequestsServed: s.engine.Requests(),
		RateLimited:    s.limiter.Rejected(),
		Clients:        s.limiter.Clients(),
	}
	if s.cfg.Faults != nil {
		body.FaultsInjected = s.cfg.Faults.Injected()
		body.FaultCounts = s.cfg.Faults.Counts()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

func (s *Server) handleTrends(w http.ResponseWriter, r *http.Request) {
	client := ClientID(r)
	ctx, span := s.cfg.Tracer.Root(r.Context(), "gtserver.request", trace.Str("client", client))
	r = r.WithContext(ctx)
	defer span.End()
	if s.cfg.Faults != nil && s.inject(w, r, client) {
		return
	}
	if ok, retry := s.limiter.Allow(client); !ok {
		seconds := int(retry/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(seconds))
		s.writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
		s.om.requests.With("429").Inc()
		span.SetAttr(trace.Int("status", http.StatusTooManyRequests), trace.Int("retry_after_s", seconds))
		s.logf("429 %s trends", client)
		return
	}

	req, err := parseTrendsQuery(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		s.om.requests.With("400").Inc()
		span.SetAttr(trace.Int("status", http.StatusBadRequest))
		span.SetError(err)
		return
	}
	span.SetAttr(trace.Str("state", string(req.State)),
		trace.Str("window", req.Start.UTC().Format("2006-01-02T15")), trace.Int("hours", req.Hours))
	frame, err := s.engine.Fetch(req)
	if err != nil {
		// All engine failures are request-shaped (validation); internal
		// errors cannot occur for a well-formed request.
		s.writeError(w, http.StatusBadRequest, err.Error())
		s.om.requests.With("400").Inc()
		span.SetAttr(trace.Int("status", http.StatusBadRequest))
		span.SetError(err)
		return
	}
	if s.cfg.OnFrame != nil {
		s.cfg.OnFrame(frame)
	}
	s.om.requests.With("200").Inc()
	span.SetAttr(trace.Int("status", http.StatusOK))
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(frame); err != nil {
		s.logf("encode error for %s: %v", client, err)
	}
	s.logf("200 %s trends state=%s start=%s hours=%d", client, req.State, req.Start.Format(time.RFC3339), req.Hours)
}

// PageviewsBody is the /api/pageviews response: absolute hourly view
// counts and the model baseline for the same hours, so clients can
// compute the outage-driven excess without a second round trip.
type PageviewsBody struct {
	State    geo.State `json:"state"`
	Start    time.Time `json:"start"`
	Counts   []float64 `json:"counts"`
	Baseline []float64 `json:"baseline"`
}

// handlePageviews serves hourly pageview counts. The query shape matches
// /api/trends (state, start, hours) minus term — pageviews are
// per-state, not per-query.
func (s *Server) handlePageviews(w http.ResponseWriter, r *http.Request) {
	client := ClientID(r)
	ctx, span := s.cfg.Tracer.Root(r.Context(), "gtserver.pageviews", trace.Str("client", client))
	_ = ctx
	defer span.End()

	req, err := parseTrendsQuery(r)
	if err == nil && !geo.Valid(req.State) {
		err = fmt.Errorf("unknown state %q", req.State)
	}
	if err == nil && (req.Hours < 1 || req.Hours > gtrends.WeekFrameHours) {
		err = fmt.Errorf("hours must be in [1, %d]", gtrends.WeekFrameHours)
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		s.om.requests.With("400").Inc()
		span.SetAttr(trace.Int("status", http.StatusBadRequest))
		span.SetError(err)
		return
	}
	span.SetAttr(trace.Str("state", string(req.State)),
		trace.Str("window", req.Start.UTC().Format("2006-01-02T15")), trace.Int("hours", req.Hours))

	body := PageviewsBody{State: req.State, Start: req.Start.UTC(),
		Counts: make([]float64, req.Hours), Baseline: make([]float64, req.Hours)}
	for i := 0; i < req.Hours; i++ {
		at := body.Start.Add(time.Duration(i) * time.Hour)
		body.Counts[i] = s.cfg.Pageviews.Counts(req.State, at)
		body.Baseline[i] = s.cfg.Pageviews.Baseline(req.State, at)
	}
	s.om.requests.With("200").Inc()
	span.SetAttr(trace.Int("status", http.StatusOK))
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.logf("encode error for %s: %v", client, err)
	}
	s.logf("200 %s pageviews state=%s start=%s hours=%d", client, req.State, req.Start.Format(time.RFC3339), req.Hours)
}

// parseTrendsQuery decodes and validates the /api/trends parameters.
func parseTrendsQuery(r *http.Request) (gtrends.FrameRequest, error) {
	q := r.URL.Query()
	var req gtrends.FrameRequest

	req.Term = q.Get("term")
	if req.Term == "" {
		req.Term = gtrends.TopicInternetOutage
	}

	state := q.Get("state")
	if state == "" {
		return req, errors.New("missing state parameter")
	}
	req.State = geo.State(state)

	start, err := time.Parse(time.RFC3339, q.Get("start"))
	if err != nil {
		return req, fmt.Errorf("bad start parameter: %v", err)
	}
	req.Start = start

	hours, err := strconv.Atoi(q.Get("hours"))
	if err != nil {
		return req, fmt.Errorf("bad hours parameter: %v", err)
	}
	req.Hours = hours

	req.WithRising = q.Get("rising") == "1" || q.Get("rising") == "true"
	req.Anchor = q.Get("anchor")
	return req, nil
}
