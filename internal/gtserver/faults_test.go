package gtserver

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sift/internal/faults"
	"sift/internal/gtrends"
)

// chaosServer runs a Server wired to the given plan over a real TCP
// listener: hang, reset, and truncate faults only reproduce at the
// transport level, not through a ResponseRecorder.
func chaosServer(t *testing.T, plan faults.Plan) (*httptest.Server, *Server) {
	t.Helper()
	srv := testServer(Config{Faults: faults.NewInjector(plan)})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

func one(mode faults.Mode, mut func(*faults.Rule)) faults.Plan {
	r := faults.Rule{Mode: mode, P: 1}
	if mut != nil {
		mut(&r)
	}
	return faults.Plan{Seed: 11, Rules: []faults.Rule{r}}
}

func trendsURL(ts *httptest.Server) string {
	return ts.URL + trendsPath("TX", t0, 168, false)
}

func TestInjectRateLimit(t *testing.T) {
	ts, _ := chaosServer(t, one(faults.RateLimit, func(r *faults.Rule) { r.RetryAfterSec = 7 }))
	resp, err := http.Get(trendsURL(ts))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7", got)
	}
}

func TestInjectServerError(t *testing.T) {
	ts, _ := chaosServer(t, one(faults.ServerError, func(r *faults.Rule) { r.Status = 503 }))
	resp, err := http.Get(trendsURL(ts))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

func TestInjectLatencyThenServes(t *testing.T) {
	ts, srv := chaosServer(t, one(faults.Latency, func(r *faults.Rule) { r.LatencyMS = 30 }))
	began := time.Now()
	resp, err := http.Get(trendsURL(ts))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
	if elapsed := time.Since(began); elapsed < 30*time.Millisecond {
		t.Errorf("response arrived in %v, latency not applied", elapsed)
	}
	var frame gtrends.Frame
	if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
		t.Fatalf("decoding delayed frame: %v", err)
	}
	if len(frame.Points) != 168 {
		t.Errorf("delayed frame has %d points", len(frame.Points))
	}
	if srv.engine.Requests() != 1 {
		t.Errorf("engine served %d requests, want 1", srv.engine.Requests())
	}
}

func TestInjectHangTimesOutClient(t *testing.T) {
	ts, _ := chaosServer(t, one(faults.Hang, func(r *faults.Rule) { r.LatencyMS = 60_000 }))
	client := &http.Client{Timeout: 100 * time.Millisecond}
	began := time.Now()
	_, err := client.Get(trendsURL(ts))
	if err == nil {
		t.Fatal("hung request returned a response")
	}
	if elapsed := time.Since(began); elapsed > 5*time.Second {
		t.Errorf("client stuck for %v despite its timeout", elapsed)
	}
}

func TestInjectResetSeversConnection(t *testing.T) {
	ts, _ := chaosServer(t, one(faults.Reset, nil))
	resp, err := http.Get(trendsURL(ts))
	if err == nil {
		resp.Body.Close()
		t.Fatal("reset request returned a response")
	}
}

func TestInjectTruncateCutsBody(t *testing.T) {
	ts, _ := chaosServer(t, one(faults.Truncate, nil))
	resp, err := http.Get(trendsURL(ts))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 with short body", resp.StatusCode)
	}
	var frame gtrends.Frame
	if err := json.NewDecoder(resp.Body).Decode(&frame); err == nil {
		t.Error("truncated body decoded cleanly")
	}
}

func TestInjectCorruptFailsValidation(t *testing.T) {
	ts, _ := chaosServer(t, one(faults.Corrupt, nil))
	resp, err := http.Get(trendsURL(ts))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var frame gtrends.Frame
	if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
		t.Fatalf("corrupt frame should decode as JSON: %v", err)
	}
	req := gtrends.FrameRequest{Term: gtrends.TopicInternetOutage, State: "TX", Start: t0, Hours: 168}
	if gtrends.ValidateFrame(&frame, req) == nil {
		t.Error("corrupt frame passes validation")
	}
}

// TestInjectedFaultsSkipEngine is the determinism invariant at the HTTP
// layer: fabricated faults must not consume engine sampling keys.
func TestInjectedFaultsSkipEngine(t *testing.T) {
	ts, srv := chaosServer(t, one(faults.Corrupt, nil))
	for i := 0; i < 5; i++ {
		resp, err := http.Get(trendsURL(ts))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := srv.engine.Requests(); got != 0 {
		t.Errorf("engine consumed %d request keys during pure-fault traffic, want 0", got)
	}
}

func TestStatsReportFaultCounters(t *testing.T) {
	ts, _ := chaosServer(t, one(faults.RateLimit, nil))
	for i := 0; i < 3; i++ {
		resp, err := http.Get(trendsURL(ts))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsBody
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.FaultsInjected != 3 {
		t.Errorf("faults_injected = %d, want 3", stats.FaultsInjected)
	}
	if stats.FaultCounts["rate-limit"] != 3 {
		t.Errorf("fault_counts = %v", stats.FaultCounts)
	}
}

func TestNoFaultsConfigUntouched(t *testing.T) {
	// A server without an injector must behave exactly as before the chaos
	// layer existed.
	srv := testServer(Config{})
	rec := get(t, srv, trendsPath("TX", t0, 168, false), nil)
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d", rec.Code)
	}
}
