package gtserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sift/internal/gtrends"
	"sift/internal/searchmodel"
	"sift/internal/simworld"
)

var t0 = time.Date(2021, 2, 15, 0, 0, 0, 0, time.UTC)

func testServer(cfg Config) *Server {
	storm := &simworld.Event{
		ID: "storm", Name: "Winter storm", Kind: simworld.KindPower,
		Cause: simworld.CauseWinterStorm, Start: t0.Add(30 * time.Hour), Duration: 45 * time.Hour,
		Impacts: []simworld.Impact{{State: "TX", Intensity: 2000}},
		Terms:   []simworld.TermWeight{{Term: "power outage", Share: 0.5}},
	}
	model := searchmodel.New(7, simworld.NewTimeline([]*simworld.Event{storm}), searchmodel.Params{})
	return New(gtrends.NewEngine(model, gtrends.Config{}), cfg)
}

func get(t *testing.T, srv *Server, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func trendsPath(state string, start time.Time, hours int, rising bool) string {
	p := "/api/trends?state=" + state + "&start=" + start.Format(time.RFC3339) + "&hours=" + itoa(hours)
	if rising {
		p += "&rising=1"
	}
	return p
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		b = append([]byte{'-'}, b...)
	}
	return string(b)
}

func TestTrendsEndpoint(t *testing.T) {
	srv := testServer(Config{})
	rec := get(t, srv, trendsPath("TX", t0, 168, true), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var frame gtrends.Frame
	if err := json.Unmarshal(rec.Body.Bytes(), &frame); err != nil {
		t.Fatal(err)
	}
	if len(frame.Points) != 168 {
		t.Errorf("got %d points", len(frame.Points))
	}
	if frame.State != "TX" || frame.Term != gtrends.TopicInternetOutage {
		t.Errorf("frame identity: %+v", frame)
	}
	if len(frame.Rising) == 0 {
		t.Error("rising requested but absent")
	}
}

func TestTrendsDefaultsTermToTopic(t *testing.T) {
	srv := testServer(Config{})
	rec := get(t, srv, trendsPath("CA", t0, 24, false), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var frame gtrends.Frame
	if err := json.Unmarshal(rec.Body.Bytes(), &frame); err != nil {
		t.Fatal(err)
	}
	if frame.Term != gtrends.TopicInternetOutage {
		t.Errorf("default term = %q", frame.Term)
	}
}

func TestTrendsBadRequests(t *testing.T) {
	srv := testServer(Config{})
	cases := []string{
		"/api/trends",                              // missing everything
		trendsPath("ZZ", t0, 24, false),            // bad state
		trendsPath("TX", t0, 9999, false),          // too long
		"/api/trends?state=TX&start=nope&hours=24", // bad time
		"/api/trends?state=TX&start=" + t0.Format(time.RFC3339) + "&hours=abc",
	}
	for _, path := range cases {
		rec := get(t, srv, path, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, rec.Code)
		}
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q not JSON error envelope", path, rec.Body)
		}
	}
}

func TestRateLimitPerClient(t *testing.T) {
	srv := testServer(Config{RatePerSec: 1000, Burst: 3})
	path := trendsPath("TX", t0, 24, false)
	hdrA := map[string]string{"X-Fetcher-IP": "10.1.0.1"}
	for i := 0; i < 3; i++ {
		if rec := get(t, srv, path, hdrA); rec.Code != http.StatusOK {
			t.Fatalf("request %d status = %d", i, rec.Code)
		}
	}
	rec := get(t, srv, path, hdrA)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("4th burst request status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	// A different fetcher IP has its own budget.
	hdrB := map[string]string{"X-Fetcher-IP": "10.2.0.1"}
	if rec := get(t, srv, path, hdrB); rec.Code != http.StatusOK {
		t.Errorf("fresh client status = %d, want 200", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(Config{RatePerSec: 1000, Burst: 2})
	path := trendsPath("TX", t0, 24, false)
	hdr := map[string]string{"X-Fetcher-IP": "10.1.0.1"}
	get(t, srv, path, hdr)
	get(t, srv, path, hdr)
	get(t, srv, path, hdr) // limited
	rec := get(t, srv, "/api/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var sb statsBody
	if err := json.Unmarshal(rec.Body.Bytes(), &sb); err != nil {
		t.Fatal(err)
	}
	if sb.RequestsServed != 2 {
		t.Errorf("requests_served = %d, want 2", sb.RequestsServed)
	}
	if sb.RateLimited != 1 {
		t.Errorf("rate_limited = %d, want 1", sb.RateLimited)
	}
	if sb.Clients < 1 {
		t.Errorf("clients = %d", sb.Clients)
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(Config{})
	rec := get(t, srv, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Errorf("healthz status = %d", rec.Code)
	}
}

func TestClientIDFallsBackToRemoteAddr(t *testing.T) {
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.RemoteAddr = "192.0.2.7:1234"
	if got := ClientID(req); got != "192.0.2.7" {
		t.Errorf("ClientID = %q", got)
	}
	req.Header.Set("X-Fetcher-IP", "10.9.0.1")
	if got := ClientID(req); got != "10.9.0.1" {
		t.Errorf("ClientID with header = %q", got)
	}
}

func TestLimiterRefill(t *testing.T) {
	clock := t0
	now := func() time.Time { return clock }
	l := NewLimiter(2, 1, now) // 2 tokens/sec, burst 1
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("first request should pass")
	}
	ok, retry := l.Allow("a")
	if ok {
		t.Fatal("second immediate request should be limited")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retry hint = %v, want (0, 1s]", retry)
	}
	clock = clock.Add(600 * time.Millisecond) // refills 1.2 tokens
	if ok, _ := l.Allow("a"); !ok {
		t.Error("request after refill should pass")
	}
	if l.Rejected() != 1 {
		t.Errorf("Rejected = %d, want 1", l.Rejected())
	}
	if l.Clients() != 1 {
		t.Errorf("Clients = %d, want 1", l.Clients())
	}
}

func TestLimiterCapsAtBurst(t *testing.T) {
	clock := t0
	l := NewLimiter(1000, 5, func() time.Time { return clock })
	clock = clock.Add(time.Hour) // would refill millions; cap at burst
	allowed := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("a"); ok {
			allowed++
		}
	}
	if allowed != 5 {
		t.Errorf("allowed %d after long idle, want burst of 5", allowed)
	}
}
