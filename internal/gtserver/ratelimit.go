package gtserver

import (
	"sync"
	"time"
)

// tokenBucket is a standard token-bucket rate limiter.
type tokenBucket struct {
	tokens     float64
	capacity   float64
	refillRate float64 // tokens per second
	last       time.Time
}

// take attempts to consume one token at instant now. When the bucket is
// empty it returns false and the wait until a token will be available.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * b.refillRate
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.refillRate
	return false, time.Duration(need * float64(time.Second))
}

// Limiter applies per-client token buckets, mirroring Google Trends'
// IP-based rate limiting — the bottleneck the paper's collection module
// works around with fetcher units behind separate IPs.
type Limiter struct {
	mu      sync.Mutex
	buckets map[string]*tokenBucket
	rate    float64
	burst   int
	now     func() time.Time

	// rejected counts rate-limited requests, for operational stats.
	rejected uint64
}

// NewLimiter builds a limiter granting each client rate requests per
// second with the given burst. now defaults to time.Now and is injectable
// for tests.
func NewLimiter(rate float64, burst int, now func() time.Time) *Limiter {
	if now == nil {
		now = time.Now
	}
	return &Limiter{
		buckets: make(map[string]*tokenBucket),
		rate:    rate,
		burst:   burst,
		now:     now,
	}
}

// Allow consumes one token for the client, returning whether the request
// may proceed and, if not, how long the client should wait.
func (l *Limiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		b = &tokenBucket{
			tokens:     float64(l.burst),
			capacity:   float64(l.burst),
			refillRate: l.rate,
			last:       l.now(),
		}
		l.buckets[client] = b
	}
	ok, retryAfter = b.take(l.now())
	if !ok {
		l.rejected++
	}
	return ok, retryAfter
}

// Rejected returns how many requests have been rate-limited.
func (l *Limiter) Rejected() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rejected
}

// Clients returns how many distinct clients have been seen.
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
