package gtserver

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"sift/internal/faults"
	"sift/internal/trace"
)

// inject consults the fault plan for this request and, when a fault fires,
// emits it at the transport level. It reports whether the request was
// fully handled (true) or should proceed to normal service (false — the
// no-fault and added-latency cases).
//
// Injected responses are fabricated from the request and the decision's
// hash bits alone; the Trends engine is never consulted, so the engine's
// per-request sampling counter advances exactly as in a fault-free run.
func (s *Server) inject(w http.ResponseWriter, r *http.Request, client string) bool {
	d := s.cfg.Faults.Decide(client)
	if d.Mode != faults.None {
		s.om.faults.With(d.Mode.String()).Inc()
		trace.FromContext(r.Context()).Event("fault.served",
			trace.Str("mode", d.Mode.String()), trace.Str("client", client))
	}
	switch d.Mode {
	case faults.None:
		return false

	case faults.Latency:
		select {
		case <-r.Context().Done():
			return true
		case <-time.After(d.Latency):
		}
		s.logf("fault latency %v %s", d.Latency, client)
		return false

	case faults.RateLimit:
		w.Header().Set("Retry-After", strconv.Itoa(int(d.RetryAfter/time.Second)))
		s.writeError(w, http.StatusTooManyRequests, "injected rate-limit storm")
		s.logf("fault 429 %s", client)
		return true

	case faults.ServerError:
		s.writeError(w, d.Status, "injected server error")
		s.logf("fault %d %s", d.Status, client)
		return true

	case faults.Hang:
		// Hold the request open until the client disconnects or the cap
		// elapses, then sever without a response.
		wait := d.Latency
		if wait <= 0 {
			wait = 30 * time.Second
		}
		select {
		case <-r.Context().Done():
		case <-time.After(wait):
		}
		s.logf("fault hang %s", client)
		panic(http.ErrAbortHandler)

	case faults.Reset:
		// Abort before any response bytes: the client sees the connection
		// drop (EOF / connection reset).
		s.logf("fault reset %s", client)
		panic(http.ErrAbortHandler)

	case faults.Truncate:
		req, err := parseTrendsQuery(r)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err.Error())
			return true
		}
		body, err := json.Marshal(faults.FabricateFrame(req, d.Variant))
		if err != nil || len(body) < 2 {
			panic(http.ErrAbortHandler)
		}
		// Declare the full length but send only half: net/http closes the
		// connection on the short write and the client's JSON decoder hits
		// an unexpected EOF mid-body.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write(body[:len(body)/2])
		s.logf("fault truncate %s", client)
		return true

	case faults.Corrupt:
		req, err := parseTrendsQuery(r)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, err.Error())
			return true
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(faults.CorruptFrame(req, d.Variant))
		s.logf("fault corrupt %s", client)
		return true
	}
	return false
}
