package sift_test

import (
	"context"
	"testing"
	"time"

	"sift"
)

// TestPublicAPIFlow exercises the documented facade end to end: build a
// world, wrap it in simulated Trends, run the pipeline, annotate, merge,
// and cross-check against the probing baseline.
func TestPublicAPIFlow(t *testing.T) {
	ctx := context.Background()
	from := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)

	world, err := sift.BuildWorld(sift.WorldConfig{Seed: 1, Start: from, End: to})
	if err != nil {
		t.Fatal(err)
	}
	if world.Len() == 0 {
		t.Fatal("empty world")
	}

	fetcher := sift.NewSimulatedTrends(1, world)
	pipe := &sift.Pipeline{Fetcher: fetcher}
	res, err := pipe.Run(ctx, "TX", sift.TopicInternetOutage, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spikes) == 0 {
		t.Fatal("no spikes detected through the public API")
	}

	// The winter storm dominates February 2021 in Texas.
	var longest sift.Spike
	for _, sp := range res.Spikes {
		if sp.Duration() > longest.Duration() {
			longest = sp
		}
	}
	if longest.Duration() < 40*time.Hour {
		t.Errorf("longest spike = %v, want the ≈45h storm", longest.Duration())
	}

	// Annotation through the facade.
	err = sift.AnnotateSpikes(ctx, fetcher, res.Spikes, func(s sift.Spike) bool {
		return s.Duration() >= 24*time.Hour
	})
	if err != nil {
		t.Fatal(err)
	}
	foundPower := false
	for _, sp := range res.Spikes {
		for _, label := range sp.Annotations {
			if sift.IsPowerRelated(label) {
				foundPower = true
			}
		}
	}
	if !foundPower {
		t.Error("storm spike lacks a power annotation through the facade")
	}

	// Outage clustering.
	outages := sift.MergeOutages(res.Spikes, 0)
	if len(outages) == 0 || len(outages) > len(res.Spikes) {
		t.Errorf("MergeOutages returned %d clusters from %d spikes", len(outages), len(res.Spikes))
	}

	// Probing baseline over the same world.
	probing := sift.SimulateProbing(1, world, from, to)
	if len(probing.Records) == 0 {
		t.Error("probing baseline produced no records")
	}
	if len(probing.MatchSpike(longest, time.Hour)) == 0 {
		t.Error("the grid failure should be visible to probing")
	}
}

func TestPublicAPIStates(t *testing.T) {
	states := sift.States()
	if len(states) != 51 {
		t.Fatalf("States() = %d entries, want 51", len(states))
	}
	seen := map[sift.State]bool{}
	for _, st := range states {
		if seen[st] {
			t.Fatalf("duplicate state %s", st)
		}
		seen[st] = true
	}
	if !seen["CA"] || !seen["DC"] {
		t.Error("States() missing CA or DC")
	}
}

func TestPublicAPIAnnotator(t *testing.T) {
	a := sift.NewAnnotator()
	anns := a.Annotate([]sift.RisingTerm{
		{Term: "verizon outage", Weight: 150},
		{Term: "is verizon down", Weight: 90},
		{Term: "power outage", Weight: 120},
	})
	if len(anns) != 2 {
		t.Fatalf("got %d annotations, want merged Verizon + Power outage", len(anns))
	}
	labels := map[string]bool{}
	for _, an := range anns {
		labels[an.Label] = true
	}
	if !labels["Verizon"] || !labels["Power outage"] {
		t.Errorf("labels = %v", labels)
	}
}

func TestPublicAPIStudySubset(t *testing.T) {
	if testing.Short() {
		t.Skip("study skipped in -short mode")
	}
	study, err := sift.RunStudy(context.Background(), sift.StudyConfig{
		Seed:   2,
		Start:  time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC),
		End:    time.Date(2021, 3, 15, 0, 0, 0, 0, time.UTC),
		States: []sift.State{"TX", "OK"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Spikes) == 0 {
		t.Fatal("study found no spikes")
	}
}
