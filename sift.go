// Package sift reproduces SIFT ("Is my Internet down?": Sifting through
// User-Affecting Outages with Google Trends, IMC 2022): a detection and
// analysis tool that finds user-affecting Internet outages by mining
// aggregated web-search activity.
//
// The package is a thin, stable facade over the implementation packages
// under internal/. A typical flow:
//
//	world, _ := sift.BuildWorld(sift.WorldConfig{Seed: 1})     // simulated ground truth
//	fetcher := sift.NewSimulatedTrends(1, world)                // Google Trends semantics
//	pipe := &sift.Pipeline{Fetcher: fetcher}
//	res, _ := pipe.Run(ctx, "TX", sift.TopicInternetOutage, from, to)
//	for _, spike := range res.Spikes { ... }
//
// Against a running simulated-Trends service (cmd/siftd), replace the
// fetcher with an HTTP pool:
//
//	pool, _ := sift.NewFetcherPool("http://127.0.0.1:8428", 6)
//
// The full paper evaluation is available through RunStudy, and the
// active-probing baseline through SimulateProbing.
package sift

import (
	"context"
	"time"

	"sift/internal/annotate"
	"sift/internal/ant"
	"sift/internal/core"
	"sift/internal/engine"
	"sift/internal/experiments"
	"sift/internal/geo"
	"sift/internal/gtclient"
	"sift/internal/gtrends"
	"sift/internal/scenario"
	"sift/internal/searchmodel"
	"sift/internal/simworld"
	"sift/internal/timeseries"
)

// TopicInternetOutage is the search topic the paper tracks.
const TopicInternetOutage = gtrends.TopicInternetOutage

// Core detection types.
type (
	// Spike is one detected surge of user interest (§3.3).
	Spike = core.Spike
	// Outage is a cluster of temporally concurrent spikes across states
	// (§4.2).
	Outage = core.Outage
	// Pipeline is the crawl–average–stitch–detect processing pipeline
	// (§3.2–3.3).
	Pipeline = core.Pipeline
	// PipelineConfig tunes the pipeline.
	PipelineConfig = core.PipelineConfig
	// PipelineResult is a pipeline run's outcome.
	PipelineResult = core.Result
	// Detector is the topographic-prominence spike detector.
	Detector = core.Detector
	// SpikeDetector is the detection-stage seam; Detector is the default
	// implementation.
	SpikeDetector = core.SpikeDetector
	// FrameCache is the shared, singleflight-deduplicated frame cache
	// pipelines and studies crawl through.
	FrameCache = engine.FrameCache
	// CacheStats is a point-in-time snapshot of frame-cache counters.
	CacheStats = engine.CacheStats
	// StitchMemo memoizes stitched prefixes for incremental recompute.
	StitchMemo = core.StitchMemo
	// Series is an hourly search-interest time series.
	Series = timeseries.Series
	// State is a USPS state code ("CA", "TX", ...).
	State = geo.State
	// Frame is one Google Trends response.
	Frame = gtrends.Frame
	// FrameRequest asks for one Trends time frame.
	FrameRequest = gtrends.FrameRequest
	// RisingTerm is one related-query suggestion with its weight.
	RisingTerm = gtrends.RisingTerm
	// Fetcher is the data-source interface the pipeline crawls through.
	Fetcher = gtrends.Fetcher
	// Annotation is one ranked context label (§3.4).
	Annotation = annotate.Annotation
	// Annotator canonicalizes, clusters, and ranks rising suggestions.
	Annotator = annotate.Annotator
	// World is the ground-truth outage timeline the simulation runs on.
	World = simworld.Timeline
	// Event is one ground-truth outage.
	Event = simworld.Event
	// WorldConfig parameterizes ground-truth generation.
	WorldConfig = scenario.Config
	// ProbingDataset is the simulated ANT outages dataset (§4).
	ProbingDataset = ant.Dataset
	// Study bundles the full two-year, 51-state evaluation.
	Study = experiments.Study
	// StudyConfig parameterizes RunStudy.
	StudyConfig = experiments.StudyConfig
)

// States returns the 51 study areas (50 states plus DC).
func States() []State { return geo.Codes() }

// NewFrameCache returns a bounded shared frame cache; capacity <= 0 takes
// the default size. Set it as PipelineConfig.Cache (or StudyConfig.Cache)
// to make overlapping and repeated crawls reuse fetched frames.
func NewFrameCache(capacity int) *FrameCache { return engine.NewFrameCache(capacity) }

// NewStitchMemo returns an empty stitch memo. Paired with a shared frame
// cache, it lets a repeated or range-extended crawl restitch only the
// windows that actually changed.
func NewStitchMemo() *StitchMemo { return core.NewStitchMemo() }

// BuildWorld generates a ground-truth outage timeline: the scripted
// newsworthy events of 2020–2021 plus a calibrated stochastic background.
// The zero config (plus a Seed) covers the paper's two-year window.
func BuildWorld(cfg WorldConfig) (*World, error) { return scenario.Build(cfg) }

// NewSimulatedTrends wraps a ground-truth world in the Google Trends
// semantics engine — per-request sampling, privacy rounding, piecewise
// 0–100 normalization, rising suggestions — and returns it as a Fetcher
// for the pipeline.
func NewSimulatedTrends(seed int64, world *World) Fetcher {
	model := searchmodel.New(seed, world, searchmodel.Params{})
	return gtrends.EngineFetcher{Engine: gtrends.NewEngine(model, gtrends.Config{})}
}

// NewFetcherPool builds n HTTP fetcher units, each behind a distinct
// simulated source address, against a running simulated-Trends service
// (cmd/siftd) — the paper's workaround for per-IP rate limiting.
func NewFetcherPool(baseURL string, n int) (Fetcher, error) {
	return gtclient.NewPool(baseURL, n, nil)
}

// NewAnnotator returns the context annotator with the built-in lexicon
// and the paper's heavy-hitter seeds.
func NewAnnotator() *Annotator { return annotate.NewAnnotator() }

// AnnotateSpikes fills each selected spike's Rising terms and ranked
// Annotations by re-crawling daily frames around spike peaks. filter may
// be nil to annotate everything.
func AnnotateSpikes(ctx context.Context, fetcher Fetcher, spikes []Spike, filter func(Spike) bool) error {
	return annotate.NewAnnotator().AnnotateSpikes(ctx, fetcher, spikes, nil, annotate.DriverConfig{Filter: filter})
}

// MergeOutages clusters spikes into outages by temporal concurrency.
func MergeOutages(spikes []Spike, joinGap time.Duration) []Outage {
	return core.MergeOutages(spikes, joinGap)
}

// IsPowerRelated reports whether an annotation label indicates a power
// outage (the §4.3 analysis).
func IsPowerRelated(label string) bool { return annotate.IsPowerRelated(label) }

// RunStudy executes the full evaluation: every state crawled, averaged,
// stitched, scanned, annotated, clustered, and cross-validated against
// the probing baseline.
func RunStudy(ctx context.Context, cfg StudyConfig) (*Study, error) {
	return experiments.RunStudy(ctx, cfg)
}

// SimulateProbing produces the ANT-style active-probing dataset over the
// same ground truth, for SIFT-vs-probing comparisons.
func SimulateProbing(seed int64, world *World, from, to time.Time) *ProbingDataset {
	return ant.Simulate(ant.Config{Seed: seed}, world, from, to)
}
