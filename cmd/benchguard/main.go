// Command benchguard turns `go test -bench -benchmem` output into a
// JSON artifact and gates allocation regressions against a committed
// baseline.
//
//	go test -bench . -benchmem | tee bench.txt
//	benchguard -in bench.txt -out BENCH_$(git rev-parse --short HEAD).json \
//	    -baseline BENCH_BASELINE.json
//
// Without -baseline it only emits the artifact. With -baseline it fails
// (exit 1) when any benchmark listed in the baseline is missing from the
// run or its allocs/op exceeds the baseline by more than -tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	in := flag.String("in", "", "benchmark output to parse (default stdin)")
	out := flag.String("out", "", "write the parsed results as JSON to this path")
	baseline := flag.String("baseline", "", "gate allocs/op against this committed JSON baseline")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional allocs/op growth over the baseline")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	results, err := Parse(src)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}

	if *out != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: %d benchmarks written to %s\n", len(results), *out)
	}

	if *baseline != "" {
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base map[string]Result
		if err := json.Unmarshal(buf, &base); err != nil {
			fatal(fmt.Errorf("bad baseline %s: %w", *baseline, err))
		}
		violations := Gate(results, base, *tolerance)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", v)
		}
		if len(violations) > 0 {
			os.Exit(1)
		}
		fmt.Printf("benchguard: %d baseline benchmarks within tolerance %.0f%%\n",
			len(base), *tolerance*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(2)
}
