package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. The standard testing columns
// get named fields; ReportMetric custom units land in Metrics. In a
// baseline file the entry may also carry gating policy: MinMetrics and
// SkipAllocs.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	// MinMetrics (baseline-only) names custom metrics the run must report
	// at or above the given floor — e.g. {"scale_x": 2.5} requires the
	// crawl plane's 4-worker throughput to stay ≥2.5× its 1-worker run.
	// Floors gate ratios and rates, which are robust on shared CI runners
	// where absolute ns/op is not.
	MinMetrics map[string]float64 `json:"min_metrics,omitempty"`
	// SkipAllocs (baseline-only) exempts the benchmark from the allocs/op
	// gate — for benchmarks whose cost model is throughput, not
	// allocation discipline.
	SkipAllocs bool `json:"skip_allocs,omitempty"`
}

// procSuffix is the -N GOMAXPROCS suffix the testing package appends to
// benchmark names. It is stripped so baselines survive machines with a
// different core count.
var procSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and returns the results keyed by
// normalized benchmark name. Non-benchmark lines (goos, PASS, test logs)
// are skipped. A benchmark appearing twice keeps the last run.
func Parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		res := Result{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

// Gate compares a run against a baseline and returns one message per
// violation: a baseline benchmark missing from the run, allocs/op grown
// beyond baseline*(1+tolerance), or a custom metric under its
// min_metrics floor. Benchmarks absent from the baseline are ignored —
// the baseline file is the explicit gate list.
func Gate(run, baseline map[string]Result, tolerance float64) []string {
	var out []string
	for _, name := range sortedKeys(baseline) {
		base := baseline[name]
		got, ok := run[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: listed in baseline but missing from the run", name))
			continue
		}
		if !base.SkipAllocs {
			limit := base.AllocsPerOp * (1 + tolerance)
			if got.AllocsPerOp > limit {
				out = append(out, fmt.Sprintf("%s: allocs/op %.0f exceeds baseline %.0f (+%.0f%% tolerance → limit %.1f)",
					name, got.AllocsPerOp, base.AllocsPerOp, tolerance*100, limit))
			}
		}
		for _, unit := range sortedFloatKeys(base.MinMetrics) {
			min := base.MinMetrics[unit]
			v, reported := got.Metrics[unit]
			if !reported {
				out = append(out, fmt.Sprintf("%s: metric %q required (min %g) but not reported", name, unit, min))
				continue
			}
			if v < min {
				out = append(out, fmt.Sprintf("%s: %s %.3f below required minimum %g", name, unit, v, min))
			}
		}
	}
	return out
}

func sortedFloatKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func sortedKeys(m map[string]Result) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
