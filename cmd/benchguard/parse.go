package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. The standard testing columns
// get named fields; ReportMetric custom units land in Metrics.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// procSuffix is the -N GOMAXPROCS suffix the testing package appends to
// benchmark names. It is stripped so baselines survive machines with a
// different core count.
var procSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and returns the results keyed by
// normalized benchmark name. Non-benchmark lines (goos, PASS, test logs)
// are skipped. A benchmark appearing twice keeps the last run.
func Parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		res := Result{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

// Gate compares a run against a baseline and returns one message per
// violation: a baseline benchmark missing from the run, or allocs/op
// grown beyond baseline*(1+tolerance). Benchmarks absent from the
// baseline are ignored — the baseline file is the explicit gate list.
func Gate(run, baseline map[string]Result, tolerance float64) []string {
	var out []string
	for _, name := range sortedKeys(baseline) {
		base := baseline[name]
		got, ok := run[name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: listed in baseline but missing from the run", name))
			continue
		}
		limit := base.AllocsPerOp * (1 + tolerance)
		if got.AllocsPerOp > limit {
			out = append(out, fmt.Sprintf("%s: allocs/op %.0f exceeds baseline %.0f (+%.0f%% tolerance → limit %.1f)",
				name, got.AllocsPerOp, base.AllocsPerOp, tolerance*100, limit))
		}
	}
	return out
}

func sortedKeys(m map[string]Result) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
