package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: sift
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStitchAll/ref-4         	      10	   4222879 ns/op	20663827 B/op	    1944 allocs/op
BenchmarkStitchAll/kernel-4      	      10	     80326 ns/op	  147559 B/op	       3 allocs/op
BenchmarkAverage/ref-4           	      10	      1284 ns/op	    2864 B/op	       3 allocs/op
BenchmarkAverage/into-4          	      10	      1301 ns/op	       0 B/op	       0 allocs/op
BenchmarkHeadlineCounts/workers=1-4 	     100	   123456 ns/op	       212 spikes_total	        96 spikes_2020
PASS
ok  	sift	0.062s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5: %v", len(got), got)
	}
	kernel, ok := got["BenchmarkStitchAll/kernel"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped from BenchmarkStitchAll/kernel-4")
	}
	if kernel.AllocsPerOp != 3 || kernel.BytesPerOp != 147559 || kernel.NsPerOp != 80326 {
		t.Errorf("kernel = %+v, want allocs=3 bytes=147559 ns=80326", kernel)
	}
	if got["BenchmarkAverage/into"].AllocsPerOp != 0 {
		t.Errorf("into allocs = %v, want 0", got["BenchmarkAverage/into"].AllocsPerOp)
	}
	head := got["BenchmarkHeadlineCounts/workers=1"]
	if head.Metrics["spikes_total"] != 212 || head.Metrics["spikes_2020"] != 96 {
		t.Errorf("custom metrics not captured: %+v", head.Metrics)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	got, err := Parse(strings.NewReader("PASS\nBenchmarkBogus notanumber 5 ns/op\nok sift 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise, want 0", len(got))
	}
}

func TestGate(t *testing.T) {
	baseline := map[string]Result{
		"BenchmarkStitchAll/kernel": {AllocsPerOp: 3},
		"BenchmarkAverage/into":     {AllocsPerOp: 0},
	}
	run := map[string]Result{
		"BenchmarkStitchAll/kernel": {AllocsPerOp: 3},
		"BenchmarkAverage/into":     {AllocsPerOp: 0},
		"BenchmarkUnlisted":         {AllocsPerOp: 99999},
	}
	if v := Gate(run, baseline, 0.10); len(v) != 0 {
		t.Fatalf("clean run flagged: %v", v)
	}

	run["BenchmarkStitchAll/kernel"] = Result{AllocsPerOp: 4}
	v := Gate(run, baseline, 0.10)
	if len(v) != 1 || !strings.Contains(v[0], "BenchmarkStitchAll/kernel") {
		t.Fatalf("alloc regression not flagged: %v", v)
	}
	// A zero-alloc baseline tolerates no growth at all.
	run["BenchmarkStitchAll/kernel"] = Result{AllocsPerOp: 3}
	run["BenchmarkAverage/into"] = Result{AllocsPerOp: 1}
	if v := Gate(run, baseline, 0.10); len(v) != 1 {
		t.Fatalf("zero-baseline regression not flagged: %v", v)
	}

	delete(run, "BenchmarkAverage/into")
	v = Gate(run, baseline, 0.10)
	if len(v) != 1 || !strings.Contains(v[0], "missing from the run") {
		t.Fatalf("missing benchmark not flagged: %v", v)
	}
}

func TestGateMinMetricsAndSkipAllocs(t *testing.T) {
	baseline := map[string]Result{
		"BenchmarkCrawlPlane/workers=4": {
			SkipAllocs: true,
			MinMetrics: map[string]float64{"scale_x": 2.5},
		},
	}
	run := map[string]Result{
		"BenchmarkCrawlPlane/workers=4": {
			AllocsPerOp: 123456, // exempt via skip_allocs
			Metrics:     map[string]float64{"scale_x": 3.1, "units/sec": 900},
		},
	}
	if v := Gate(run, baseline, 0.10); len(v) != 0 {
		t.Fatalf("healthy scaling flagged: %v", v)
	}

	run["BenchmarkCrawlPlane/workers=4"] = Result{
		Metrics: map[string]float64{"scale_x": 1.7},
	}
	v := Gate(run, baseline, 0.10)
	if len(v) != 1 || !strings.Contains(v[0], "below required minimum") {
		t.Fatalf("degraded scaling not flagged: %v", v)
	}

	run["BenchmarkCrawlPlane/workers=4"] = Result{AllocsPerOp: 1}
	v = Gate(run, baseline, 0.10)
	if len(v) != 1 || !strings.Contains(v[0], "not reported") {
		t.Fatalf("missing required metric not flagged: %v", v)
	}
}
