package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:8428" || o.seed != 1 || o.rate != 25 || o.burst != 50 {
		t.Errorf("server defaults = %+v", o)
	}
	if o.start != "2020-01-01" || o.end != "2022-01-01" {
		t.Errorf("window defaults = %q..%q", o.start, o.end)
	}
	if o.faultSpec != "off" || o.record != "" || o.metricsAddr != "" || o.traceOut != "" || o.traceCap != 0 {
		t.Errorf("optional-feature defaults = %+v", o)
	}
	if o.archive {
		t.Error("archiver on by default")
	}
	if o.archiveEvery != 5*time.Second || o.archiveAdvance != 24*time.Hour ||
		o.archiveWindow != 336*time.Hour || o.archiveRetention != 0 {
		t.Errorf("archiver cadence defaults = %+v", o)
	}
	if o.archiveMaxSubs != 16 || o.archiveMaxTasks != 64 || o.archiveWorkers != 4 {
		t.Errorf("archiver quota defaults = %+v", o)
	}
	if o.crawlWorkers != 0 || o.planeLeaseTTL != 30*time.Second ||
		o.planeState != "" || o.planeCacheSize != 0 {
		t.Errorf("crawl-plane defaults = %+v", o)
	}
	if o.sources != "gt" || o.fusionScore {
		t.Errorf("fusion defaults = %+v", o)
	}
	if o.slo || o.sloEvery != 15*time.Second || o.sloCompress != 1 {
		t.Errorf("slo defaults = %+v", o)
	}
}

func TestParseFlagsSLO(t *testing.T) {
	o, err := parseFlags([]string{
		"-slo", "-metrics-addr", ":9100",
		"-slo-every", "2s", "-slo-compress", "60",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.slo || o.sloEvery != 2*time.Second || o.sloCompress != 60 {
		t.Errorf("slo overrides = %+v", o)
	}
}

func TestParseFlagsFusion(t *testing.T) {
	o, err := parseFlags([]string{
		"-archive", "-metrics-addr", ":9100",
		"-sources", "gt,pageviews", "-fusion",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.sources != "gt,pageviews" || !o.fusionScore {
		t.Errorf("fusion overrides = %+v", o)
	}
}

func TestParseFlagsOverrides(t *testing.T) {
	o, err := parseFlags([]string{
		"-addr", ":9000",
		"-seed", "42",
		"-start", "2021-01-04", "-end", "2021-06-01",
		"-rate", "100", "-burst", "10", "-quiet",
		"-faults", "default", "-fault-seed", "7",
		"-record", "/tmp/frames.json", "-record-every", "30s",
		"-metrics-addr", ":9100", "-trace-out", "/tmp/trace.jsonl",
		"-archive",
		"-archive-every", "250ms",
		"-archive-advance", "12h",
		"-archive-window", "168h",
		"-archive-retention", "720h",
		"-archive-max-subs", "3",
		"-archive-max-tasks", "5",
		"-archive-workers", "2",
		"-crawl-workers", "3",
		"-plane-lease-ttl", "5s",
		"-plane-state", "/tmp/plane",
		"-plane-cache-size", "512",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":9000" || o.seed != 42 || o.rate != 100 || o.burst != 10 || !o.quiet {
		t.Errorf("server overrides = %+v", o)
	}
	if o.faultSpec != "default" || o.faultSeed != 7 {
		t.Errorf("fault overrides = %+v", o)
	}
	if o.record != "/tmp/frames.json" || o.recordEvery != 30*time.Second {
		t.Errorf("record overrides = %+v", o)
	}
	if o.metricsAddr != ":9100" || o.traceOut != "/tmp/trace.jsonl" {
		t.Errorf("observability overrides = %+v", o)
	}
	if !o.archive || o.archiveEvery != 250*time.Millisecond || o.archiveAdvance != 12*time.Hour ||
		o.archiveWindow != 168*time.Hour || o.archiveRetention != 720*time.Hour {
		t.Errorf("archiver overrides = %+v", o)
	}
	if o.archiveMaxSubs != 3 || o.archiveMaxTasks != 5 || o.archiveWorkers != 2 {
		t.Errorf("archiver quota overrides = %+v", o)
	}
	if o.crawlWorkers != 3 || o.planeLeaseTTL != 5*time.Second ||
		o.planeState != "/tmp/plane" || o.planeCacheSize != 512 {
		t.Errorf("crawl-plane overrides = %+v", o)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"archive without metrics", []string{"-archive"}, "-metrics-addr"},
		{"bad start date", []string{"-start", "Jan 4"}, "-start"},
		{"bad end date", []string{"-end", "20210104"}, "-end"},
		{"zero cadence", []string{"-archive", "-metrics-addr", ":9100", "-archive-every", "0s"}, "-archive-every"},
		{"unknown flag", []string{"-no-such-flag"}, "flag"},
		{"malformed duration", []string{"-archive-every", "fast"}, "invalid"},
		{"negative crawl workers", []string{"-crawl-workers", "-1"}, "-crawl-workers"},
		{"crawl workers without archive", []string{"-crawl-workers", "2", "-metrics-addr", ":9100"}, "-archive"},
		{"zero lease ttl", []string{"-archive", "-metrics-addr", ":9100", "-crawl-workers", "2", "-plane-lease-ttl", "0s"}, "-plane-lease-ttl"},
		{"plane state without plane", []string{"-plane-state", "/tmp/plane"}, "-crawl-workers"},
		{"unknown source", []string{"-archive", "-metrics-addr", ":9100", "-sources", "gt,carrier-logs"}, "-sources"},
		{"fallback sources without archive", []string{"-sources", "gt,pageviews"}, "-archive"},
		{"fallback sources with crawl plane", []string{"-archive", "-metrics-addr", ":9100", "-sources", "gt,pageviews", "-crawl-workers", "2"}, "-crawl-workers"},
		{"fusion without archive", []string{"-fusion"}, "-archive"},
		{"negative trace capacity", []string{"-trace-capacity", "-1"}, "-trace-capacity"},
		{"slo without metrics", []string{"-slo"}, "-metrics-addr"},
		{"zero slo cadence", []string{"-slo", "-metrics-addr", ":9100", "-slo-every", "0s"}, "-slo-every"},
		{"fractional slo compress", []string{"-slo", "-metrics-addr", ":9100", "-slo-compress", "0.5"}, "-slo-compress"},
		{"slo compress without slo", []string{"-slo-compress", "60"}, "-slo"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
