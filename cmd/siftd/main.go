// Command siftd serves the simulated Google Trends API over HTTP: the
// ground-truth world is generated from a seed, wrapped in the Trends
// semantics engine (sampling, privacy rounding, piecewise normalization,
// rising terms), and exposed with per-client rate limiting.
//
// The SIFT crawler (cmd/sift, internal/gtclient) talks to this service
// exactly as the paper's collection module talks to Google Trends.
//
// With -archive, siftd additionally runs the continuous detection
// archiver (internal/archiver): a supervisor that crawls subscribed
// (term × state) pairs through the staged pipeline on a schedule,
// keeps rolling stitched series with retention, and publishes a live
// spike feed. The archiver's REST + SSE API mounts on the metrics
// listener under /archive/, so -archive requires -metrics-addr.
//
// Usage:
//
//	siftd [flags]
//
//	-addr        listen address (default 127.0.0.1:8428)
//	-seed        world seed (default 1)
//	-start       study start, RFC3339 date (default 2020-01-01)
//	-end         study end, RFC3339 date (default 2022-01-01)
//	-rate        per-client requests/second (default 25)
//	-burst       per-client burst (default 50)
//	-quiet       disable request logging
//	-faults      chaos plan: "off", "default", or a JSON plan file path
//	-fault-seed  fault-plan seed (default: the world seed)
//	-record      record every served frame into this JSON store
//	-record-every  how often the record store is persisted (default 1m)
//	-metrics-addr  optional second listener serving /metrics (Prometheus
//	               text format), /debug/pprof, the live crawl inspector
//	               /debug/trace/{active,recent,stream,exemplars}, and —
//	               with -archive — the /archive/ API; off when empty
//	-trace-out   write the trace ring to this file on shutdown
//	             (.jsonl or .json Chrome trace)
//	-trace-capacity  completed-span ring size (0 = the trace default);
//	                 raise it when rare spans — alert transitions, fault
//	                 events — must survive a chatty crawl's span volume
//
//	-archive            run the continuous detection archiver
//	-archive-every      wall-clock cadence of archiver rounds (default 5s)
//	-archive-advance    simulated time added per round (default 24h)
//	-archive-window     first round's crawl window (default 336h)
//	-archive-retention  rolling-series retention horizon (0 = unlimited)
//	-archive-max-subs   per-tenant subscription quota (default 16)
//	-archive-max-tasks  global (term, state) task quota (default 64)
//	-archive-workers    pipeline fetch workers per crawl (default 4)
//	-adaptive           stop crawl rounds early once the spike set and
//	                    the series confidence interval both converge
//	                    (variance-weighted merge + anchor calibration)
//	-target-ci          adaptive convergence target: per-hour CI
//	                    half-width on the 0-100 series (0 = default)
//
//	-crawl-workers     shard archiver crawls across this many lease-
//	                   coordinated crawl-plane workers (0 = crawl inline
//	                   in the pipeline, the pre-plane behaviour)
//	-plane-lease-ttl   work-unit lease TTL; a killed worker's units are
//	                   stolen after this long (default 30s)
//	-plane-state       directory the plane persists its work queue and
//	                   completed frames under, and resumes from on
//	                   restart (off when empty)
//	-plane-cache-size  per-worker frame-cache shard capacity in entries
//	                   (0 = the engine default)
//
//	-slo           run the self-monitoring SLO engine over the live metrics
//	               registry: the default rule pack (crawl-failure burn rate,
//	               gap ratio, fetch p99, feed drops, lease steals, fusion
//	               fallback ratio, write-behind drops, breaker state) drives
//	               per-rule alerts exposed at /alerts (JSON; SSE with
//	               ?stream=1) on the metrics listener, as sift_slo_* metric
//	               families, and as slo.eval/slo.transition spans; requires
//	               -metrics-addr
//	-slo-every     evaluation interval (default 15s)
//	-slo-compress  divide every rule duration (windows, for/clear holds) by
//	               this factor — CI runs the full pending→firing→resolved
//	               lifecycle in seconds instead of tens of minutes (1 = off)
//
//	-sources  archiver signal sources in fallback order: "gt" (default)
//	          or "gt,pageviews" — the fused source serves crawls from
//	          Trends and falls back to the pageviews counts backend when
//	          Trends fails or degrades (requires -archive; incompatible
//	          with -crawl-workers)
//	-fusion   score archiver spikes against probing block-outage density
//	          and pageviews excess before reporting them (requires
//	          -archive)
//
// The pageviews counts backend itself is always served on the API
// listener at GET /api/pageviews?state=..&start=..&hours=.. — it is not
// rate-limited and not subject to fault injection (pageview dumps are
// published wholesale, not crawled).
//
// SIGINT/SIGTERM drain gracefully: the archiver finishes its in-flight
// round, the crawl plane quiesces its workers and flushes persisted
// state, the record store flushes, the trace export is written, and the
// listeners shut down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sift/internal/ant"
	"sift/internal/archiver"
	"sift/internal/core"
	"sift/internal/crawlplane"
	stages "sift/internal/engine"
	"sift/internal/faults"
	"sift/internal/fusion"
	"sift/internal/gtrends"
	"sift/internal/gtserver"
	"sift/internal/obs"
	"sift/internal/scenario"
	"sift/internal/searchmodel"
	"sift/internal/simworld"
	"sift/internal/slo"
	"sift/internal/store"
	"sift/internal/trace"
)

// options is the parsed flag set — one struct instead of the positional
// parameter list that kept growing with every feature.
type options struct {
	addr        string
	seed        int64
	start       string
	end         string
	rate        float64
	burst       int
	quiet       bool
	faultSpec   string
	faultSeed   int64
	record      string
	recordEvery time.Duration
	metricsAddr string
	traceOut    string
	traceCap    int

	archive          bool
	archiveEvery     time.Duration
	archiveAdvance   time.Duration
	archiveWindow    time.Duration
	archiveRetention time.Duration
	archiveMaxSubs   int
	archiveMaxTasks  int
	archiveWorkers   int
	adaptive         bool
	targetCI         float64

	crawlWorkers   int
	planeLeaseTTL  time.Duration
	planeState     string
	planeCacheSize int

	sources     string
	fusionScore bool

	slo         bool
	sloEvery    time.Duration
	sloCompress float64
}

// parseFlags parses args (without the program name) into options,
// validating cross-flag constraints.
func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("siftd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8428", "listen address")
	fs.Int64Var(&o.seed, "seed", 1, "world seed")
	fs.StringVar(&o.start, "start", "2020-01-01", "study start (YYYY-MM-DD)")
	fs.StringVar(&o.end, "end", "2022-01-01", "study end (YYYY-MM-DD)")
	fs.Float64Var(&o.rate, "rate", 25, "per-client requests per second")
	fs.IntVar(&o.burst, "burst", 50, "per-client burst")
	fs.BoolVar(&o.quiet, "quiet", false, "disable request logging")
	fs.StringVar(&o.faultSpec, "faults", "off", `chaos plan: "off", "default", or a JSON plan file`)
	fs.Int64Var(&o.faultSeed, "fault-seed", 0, "fault-plan seed (default: world seed)")
	fs.StringVar(&o.record, "record", "", "record every served frame into this JSON store")
	fs.DurationVar(&o.recordEvery, "record-every", time.Minute, "how often the record store is persisted")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics and /debug/pprof on this address (off when empty)")
	fs.StringVar(&o.traceOut, "trace-out", "", "write the trace ring to this file on shutdown")
	fs.IntVar(&o.traceCap, "trace-capacity", 0, "completed-span ring size (0 = default); raise when rare spans must survive a chatty crawl")
	fs.BoolVar(&o.archive, "archive", false, "run the continuous detection archiver")
	fs.DurationVar(&o.archiveEvery, "archive-every", 5*time.Second, "wall-clock cadence of archiver rounds")
	fs.DurationVar(&o.archiveAdvance, "archive-advance", 24*time.Hour, "simulated time added per archiver round")
	fs.DurationVar(&o.archiveWindow, "archive-window", 336*time.Hour, "first archiver round's crawl window")
	fs.DurationVar(&o.archiveRetention, "archive-retention", 0, "rolling-series retention horizon (0 = unlimited)")
	fs.IntVar(&o.archiveMaxSubs, "archive-max-subs", 16, "per-tenant subscription quota")
	fs.IntVar(&o.archiveMaxTasks, "archive-max-tasks", 64, "global (term, state) task quota")
	fs.IntVar(&o.archiveWorkers, "archive-workers", 4, "pipeline fetch workers per archiver crawl")
	fs.BoolVar(&o.adaptive, "adaptive", false, "stop archiver crawl rounds early once spike set and series CI both converge")
	fs.Float64Var(&o.targetCI, "target-ci", 0, "adaptive convergence target: per-hour CI half-width on the 0-100 series (0 = default)")
	fs.IntVar(&o.crawlWorkers, "crawl-workers", 0, "crawl-plane worker count (0 = crawl inline)")
	fs.DurationVar(&o.planeLeaseTTL, "plane-lease-ttl", 30*time.Second, "crawl-plane work-unit lease TTL")
	fs.StringVar(&o.planeState, "plane-state", "", "directory for crawl-plane queue/frame persistence (off when empty)")
	fs.IntVar(&o.planeCacheSize, "plane-cache-size", 0, "per-worker frame-cache shard capacity (0 = engine default)")
	fs.StringVar(&o.sources, "sources", "gt", `archiver signal sources, in fallback order: "gt" or "gt,pageviews"`)
	fs.BoolVar(&o.fusionScore, "fusion", false, "score archiver spikes against probing and pageviews corroboration")
	fs.BoolVar(&o.slo, "slo", false, "run the self-monitoring SLO engine (alerts at /alerts on the metrics listener)")
	fs.DurationVar(&o.sloEvery, "slo-every", 15*time.Second, "SLO evaluation interval")
	fs.Float64Var(&o.sloCompress, "slo-compress", 1, "divide every SLO rule duration by this factor (1 = off)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if _, err := time.Parse("2006-01-02", o.start); err != nil {
		return o, fmt.Errorf("bad -start: %v", err)
	}
	if _, err := time.Parse("2006-01-02", o.end); err != nil {
		return o, fmt.Errorf("bad -end: %v", err)
	}
	if o.archive && o.metricsAddr == "" {
		return o, errors.New("-archive requires -metrics-addr (the /archive/ API mounts there)")
	}
	if o.archive && o.archiveEvery <= 0 {
		return o, errors.New("-archive-every must be positive")
	}
	if o.crawlWorkers < 0 {
		return o, errors.New("-crawl-workers must be >= 0")
	}
	if o.crawlWorkers > 0 && !o.archive {
		return o, errors.New("-crawl-workers requires -archive (the plane serves archiver crawls)")
	}
	if o.crawlWorkers > 0 && o.planeLeaseTTL <= 0 {
		return o, errors.New("-plane-lease-ttl must be positive")
	}
	if o.planeState != "" && o.crawlWorkers == 0 {
		return o, errors.New("-plane-state without -crawl-workers has nothing to persist")
	}
	switch o.sources {
	case "gt", "gt,pageviews":
	default:
		return o, fmt.Errorf(`bad -sources %q: want "gt" or "gt,pageviews"`, o.sources)
	}
	if o.sources != "gt" && !o.archive {
		return o, errors.New("-sources with a fallback requires -archive (the fused source serves archiver crawls)")
	}
	if o.sources != "gt" && o.crawlWorkers > 0 {
		return o, errors.New("-sources with a fallback conflicts with -crawl-workers (the plane owns the fetch tier)")
	}
	if o.fusionScore && !o.archive {
		return o, errors.New("-fusion requires -archive (the fusion detector scores archiver crawls)")
	}
	if o.adaptive && !o.archive {
		return o, errors.New("-adaptive requires -archive (it configures the archiver's crawl rounds)")
	}
	if o.targetCI != 0 && !o.adaptive {
		return o, errors.New("-target-ci needs -adaptive")
	}
	if o.targetCI < 0 {
		return o, errors.New("-target-ci must be >= 0")
	}
	if o.traceCap < 0 {
		return o, errors.New("-trace-capacity must be >= 0")
	}
	if o.slo && o.metricsAddr == "" {
		return o, errors.New("-slo requires -metrics-addr (the /alerts API mounts there)")
	}
	if o.slo && o.sloEvery <= 0 {
		return o, errors.New("-slo-every must be positive")
	}
	if o.sloCompress < 1 {
		return o, errors.New("-slo-compress must be >= 1")
	}
	if o.sloCompress > 1 && !o.slo {
		return o, errors.New("-slo-compress needs -slo")
	}
	return o, nil
}

func main() {
	opts, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "siftd:", err)
		os.Exit(2)
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "siftd:", err)
		os.Exit(1)
	}
}

// serveMetrics starts the opt-in observability listener on mux: the
// process registry in Prometheus text format at /metrics, net/http/pprof,
// and the live trace inspector over the server's request spans. It runs
// on its own mux and address so the debugging surface is never exposed on
// the API listener.
func serveMetrics(addr string, mux *http.ServeMux) *http.Server {
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("metrics listener: %v", err)
		}
	}()
	return srv
}

// metricsMux assembles the observability mux.
func metricsMux(tracer *trace.Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Default().Handler())
	tracer.AttachDebug(mux)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// faultInjector resolves the -faults flag into an injector, or nil for
// "off".
func faultInjector(spec string, seed int64) (*faults.Injector, error) {
	switch spec {
	case "off", "":
		return nil, nil
	case "default":
		return faults.NewInjector(faults.DefaultPlan(seed)), nil
	default:
		plan, err := faults.LoadPlan(spec)
		if err != nil {
			return nil, err
		}
		if plan.Seed == 0 {
			plan.Seed = seed
		}
		return faults.NewInjector(plan), nil
	}
}

func run(opts options) error {
	obs.RegisterBuildInfo(obs.Default())
	from, err := time.Parse("2006-01-02", opts.start)
	if err != nil {
		return fmt.Errorf("bad -start: %v", err)
	}
	to, err := time.Parse("2006-01-02", opts.end)
	if err != nil {
		return fmt.Errorf("bad -end: %v", err)
	}

	log.Printf("building ground truth: seed=%d window=[%s, %s)", opts.seed, opts.start, opts.end)
	cfg := scenario.DefaultConfig(opts.seed)
	cfg.Start, cfg.End = from.UTC(), to.UTC()
	tl, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	log.Printf("world ready: %d ground-truth events", tl.Len())

	model := searchmodel.New(opts.seed, tl, searchmodel.Params{})
	engine := gtrends.NewEngine(model, gtrends.Config{})

	var logger *log.Logger
	if !opts.quiet {
		logger = log.New(os.Stderr, "siftd ", log.LstdFlags)
	}
	if opts.faultSeed == 0 {
		opts.faultSeed = opts.seed
	}
	injector, err := faultInjector(opts.faultSpec, opts.faultSeed)
	if err != nil {
		return err
	}
	if injector != nil {
		log.Printf("chaos enabled: %d fault rules, seed=%d", len(injector.Plan().Rules), injector.Plan().Seed)
	}
	views := simworld.NewPageviews(opts.seed, tl)
	scfg := gtserver.Config{
		RatePerSec: opts.rate,
		Burst:      opts.burst,
		Logger:     logger,
		Faults:     injector,
		Pageviews:  views,
	}
	// The tracer only exists when something can read it: the metrics
	// listener's /debug/trace inspector or the -trace-out export.
	var tracer *trace.Tracer
	if opts.metricsAddr != "" || opts.traceOut != "" {
		tracer = trace.New(trace.Config{Capacity: opts.traceCap})
		scfg.Tracer = tracer
	}

	var recordDB *store.DB
	var recordWB *store.WriteBehind
	if opts.record != "" {
		recordDB = store.New()
		recordWB = store.NewWriteBehind(recordDB, 0).WithTrace(tracer)
		// The server has no notion of averaging rounds; recorded frames
		// all carry round 0 — an audit trail of what was served, not a
		// cache-primable crawl (the client records those itself).
		scfg.OnFrame = func(f *gtrends.Frame) { recordWB.AddFrame(0, f) }
		if opts.recordEvery <= 0 {
			opts.recordEvery = time.Minute
		}
		saveErrors := obs.Default().Counter("sift_siftd_record_save_errors_total",
			"failed persists of the record store")
		go func() {
			for range time.Tick(opts.recordEvery) {
				recordWB.Flush()
				if err := recordDB.Save(opts.record); err != nil {
					saveErrors.Inc()
					log.Printf("record: %v", err)
				}
			}
		}()
		log.Printf("recording served frames to %s every %v", opts.record, opts.recordEvery)
	}
	srv := gtserver.New(engine, scfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var sup *archiver.Supervisor
	var plane *crawlplane.Plane
	var metricsSrv *http.Server
	var sloEng *slo.Engine
	if opts.metricsAddr != "" {
		mux := metricsMux(tracer)
		if opts.slo {
			rules := slo.DefaultRules()
			if opts.sloCompress > 1 {
				rules = slo.Compress(rules, opts.sloCompress)
			}
			sloEng, err = slo.New(slo.Config{
				Rules:  rules,
				Tracer: tracer,
				Every:  opts.sloEvery,
			})
			if err != nil {
				return err
			}
			sloEng.AttachAPI(mux)
			go sloEng.Run(ctx)
			log.Printf("slo engine: %d rules every %v (compress %gx), alerts at /alerts",
				len(rules), opts.sloEvery, opts.sloCompress)
		}
		if opts.archive && opts.crawlWorkers > 0 {
			// The sharded crawl tier: the archiver's pipeline fetches
			// through it instead of crawling inline, so windows survive a
			// worker kill (lease steal) and a process restart (-plane-state).
			plane, err = crawlplane.New(crawlplane.Config{
				Workers: opts.crawlWorkers,
				// Each worker gets its own fetcher, mirroring the per-pool
				// client topology a live deployment would run.
				NewFetcher: func(int) gtrends.Fetcher {
					return gtrends.EngineFetcher{Engine: engine}
				},
				LeaseTTL:  opts.planeLeaseTTL,
				CacheSize: opts.planeCacheSize,
				StatePath: opts.planeState,
				Tracer:    tracer,
			})
			if err != nil {
				return err
			}
			log.Printf("crawl plane: %d workers, lease TTL %v, state=%q",
				opts.crawlWorkers, opts.planeLeaseTTL, opts.planeState)
		}
		if opts.archive {
			acfg := archiver.Config{
				// Without a plane the archiver crawls the engine in-process:
				// same frames the HTTP clients see, no loop-back hop.
				Fetcher:                   gtrends.EngineFetcher{Engine: engine},
				Start:                     from.UTC(),
				End:                       to.UTC(),
				InitialWindow:             opts.archiveWindow,
				Advance:                   opts.archiveAdvance,
				Every:                     opts.archiveEvery,
				Retention:                 opts.archiveRetention,
				MaxSubscriptionsPerTenant: opts.archiveMaxSubs,
				MaxTasks:                  opts.archiveMaxTasks,
				Pipeline: core.PipelineConfig{
					Workers:  opts.archiveWorkers,
					Adaptive: opts.adaptive,
					TargetCI: opts.targetCI,
				},
				Tracer: tracer,
			}
			if sloEng != nil {
				acfg.AlertNames = sloEng.FiringNames
			}
			if plane != nil {
				acfg.Fetcher = nil
				acfg.Plane = plane
			} else if injector != nil {
				// The archiver crawls the engine in-process, bypassing the
				// HTTP server's fault injection — wrap its fetcher so a
				// -faults plan disturbs archiver crawls too (which is what
				// the CI alert-lifecycle check leans on).
				acfg.Fetcher = faults.Wrap(acfg.Fetcher, injector.Plan(), "archiver")
			}
			if opts.sources == "gt,pageviews" {
				// Fused fetch tier: Trends primary with pageviews fallback,
				// steered by the per-source health tracker. The tracker also
				// digests each finished crawl's health record.
				tracker := fusion.NewTracker(fusion.TrackerConfig{})
				acfg.Fetcher = nil
				acfg.Pipeline.Source = &fusion.FallbackSource{
					Primary: stages.RetryingSource{
						Fetcher: gtrends.EngineFetcher{Engine: engine},
						Keyed:   opts.adaptive,
					},
					Secondary: &fusion.PageviewsSource{Views: views},
					Tracker:   tracker,
				}
				acfg.Pipeline.OnHealth = func(h core.CrawlHealth) { tracker.ObserveHealth("gt", h) }
				log.Printf("fused sources: gt with pageviews fallback")
			}
			if opts.fusionScore {
				probing := ant.Simulate(ant.Config{Seed: opts.seed}, tl, from.UTC(), to.UTC())
				acfg.Pipeline.Detector = fusion.NewDetector(probing, views, fusion.DetectorConfig{Tracer: tracer})
				log.Printf("fusion detector: scoring spikes against %d probing blocks", len(probing.Blocks))
			}
			sup, err = archiver.New(acfg)
			if err != nil {
				return err
			}
			sup.AttachAPI(mux)
			go sup.Run(ctx)
			log.Printf("archiver running: advance=%v per round, every %v, window=%v",
				opts.archiveAdvance, opts.archiveEvery, opts.archiveWindow)
		}
		metricsSrv = serveMetrics(opts.metricsAddr, mux)
		log.Printf("serving /metrics, /debug/pprof, and /debug/trace on http://%s", opts.metricsAddr)
	}

	log.Printf("serving simulated Google Trends on http://%s (rate=%g/s burst=%d per client)",
		opts.addr, opts.rate, opts.burst)
	httpSrv := &http.Server{
		Addr:              opts.addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain, in dependency order: stop taking crawl rounds,
	// quiesce the crawl plane's workers and flush its persisted state,
	// flush what was recorded, export the trace, then close listeners.
	log.Printf("shutting down")
	if sup != nil {
		sup.Close()
	}
	if sloEng != nil {
		sloEng.Close()
	}
	if plane != nil {
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := plane.Close(drainCtx); err != nil {
			log.Printf("crawl plane: drain: %v", err)
		}
		cancel()
	}
	if recordWB != nil {
		recordWB.Close()
		if err := recordDB.Save(opts.record); err != nil {
			log.Printf("record: final save: %v", err)
		}
	}
	if opts.traceOut != "" && tracer != nil {
		if err := tracer.WriteFile(opts.traceOut); err != nil {
			log.Printf("trace export: %v", err)
		} else {
			log.Printf("trace written to %s", opts.traceOut)
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if metricsSrv != nil {
		metricsSrv.Shutdown(shutdownCtx)
	}
	return httpSrv.Shutdown(shutdownCtx)
}
