// Command siftd serves the simulated Google Trends API over HTTP: the
// ground-truth world is generated from a seed, wrapped in the Trends
// semantics engine (sampling, privacy rounding, piecewise normalization,
// rising terms), and exposed with per-client rate limiting.
//
// The SIFT crawler (cmd/sift, internal/gtclient) talks to this service
// exactly as the paper's collection module talks to Google Trends.
//
// Usage:
//
//	siftd [flags]
//
//	-addr        listen address (default 127.0.0.1:8428)
//	-seed        world seed (default 1)
//	-start       study start, RFC3339 date (default 2020-01-01)
//	-end         study end, RFC3339 date (default 2022-01-01)
//	-rate        per-client requests/second (default 25)
//	-burst       per-client burst (default 50)
//	-quiet       disable request logging
//	-faults      chaos plan: "off", "default", or a JSON plan file path
//	-fault-seed  fault-plan seed (default: the world seed)
//	-record      record every served frame into this JSON store
//	-record-every  how often the record store is persisted (default 1m)
//	-metrics-addr  optional second listener serving /metrics (Prometheus
//	               text format), /debug/pprof, and the live crawl
//	               inspector /debug/trace/{active,recent,stream,exemplars}
//	               over the server's request spans; off when empty
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"sift/internal/faults"
	"sift/internal/gtrends"
	"sift/internal/gtserver"
	"sift/internal/obs"
	"sift/internal/scenario"
	"sift/internal/searchmodel"
	"sift/internal/store"
	"sift/internal/trace"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8428", "listen address")
		seed        = flag.Int64("seed", 1, "world seed")
		start       = flag.String("start", "2020-01-01", "study start (YYYY-MM-DD)")
		end         = flag.String("end", "2022-01-01", "study end (YYYY-MM-DD)")
		rate        = flag.Float64("rate", 25, "per-client requests per second")
		burst       = flag.Int("burst", 50, "per-client burst")
		quiet       = flag.Bool("quiet", false, "disable request logging")
		faultSpec   = flag.String("faults", "off", `chaos plan: "off", "default", or a JSON plan file`)
		faultSeed   = flag.Int64("fault-seed", 0, "fault-plan seed (default: world seed)")
		record      = flag.String("record", "", "record every served frame into this JSON store")
		recordEvery = flag.Duration("record-every", time.Minute, "how often the record store is persisted")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address (off when empty)")
	)
	flag.Parse()
	if err := run(*addr, *seed, *start, *end, *rate, *burst, *quiet, *faultSpec, *faultSeed, *record, *recordEvery, *metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "siftd:", err)
		os.Exit(1)
	}
}

// serveMetrics starts the opt-in observability listener: the process
// registry in Prometheus text format at /metrics, net/http/pprof, and
// the live trace inspector over the server's request spans. It runs on
// its own mux and address so the debugging surface is never exposed on
// the API listener.
func serveMetrics(addr string, tracer *trace.Tracer) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Default().Handler())
	tracer.AttachDebug(mux)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("metrics listener: %v", err)
		}
	}()
}

// faultInjector resolves the -faults flag into an injector, or nil for
// "off".
func faultInjector(spec string, seed int64) (*faults.Injector, error) {
	switch spec {
	case "off", "":
		return nil, nil
	case "default":
		return faults.NewInjector(faults.DefaultPlan(seed)), nil
	default:
		plan, err := faults.LoadPlan(spec)
		if err != nil {
			return nil, err
		}
		if plan.Seed == 0 {
			plan.Seed = seed
		}
		return faults.NewInjector(plan), nil
	}
}

func run(addr string, seed int64, start, end string, rate float64, burst int, quiet bool, faultSpec string, faultSeed int64, record string, recordEvery time.Duration, metricsAddr string) error {
	from, err := time.Parse("2006-01-02", start)
	if err != nil {
		return fmt.Errorf("bad -start: %v", err)
	}
	to, err := time.Parse("2006-01-02", end)
	if err != nil {
		return fmt.Errorf("bad -end: %v", err)
	}

	log.Printf("building ground truth: seed=%d window=[%s, %s)", seed, start, end)
	cfg := scenario.DefaultConfig(seed)
	cfg.Start, cfg.End = from.UTC(), to.UTC()
	tl, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	log.Printf("world ready: %d ground-truth events", tl.Len())

	model := searchmodel.New(seed, tl, searchmodel.Params{})
	engine := gtrends.NewEngine(model, gtrends.Config{})

	var logger *log.Logger
	if !quiet {
		logger = log.New(os.Stderr, "siftd ", log.LstdFlags)
	}
	if faultSeed == 0 {
		faultSeed = seed
	}
	injector, err := faultInjector(faultSpec, faultSeed)
	if err != nil {
		return err
	}
	if injector != nil {
		log.Printf("chaos enabled: %d fault rules, seed=%d", len(injector.Plan().Rules), injector.Plan().Seed)
	}
	scfg := gtserver.Config{
		RatePerSec: rate,
		Burst:      burst,
		Logger:     logger,
		Faults:     injector,
	}
	// The tracer only exists when something can read it: the metrics
	// listener's /debug/trace inspector.
	var tracer *trace.Tracer
	if metricsAddr != "" {
		tracer = trace.New(trace.Config{})
		scfg.Tracer = tracer
	}
	if record != "" {
		db := store.New()
		wb := store.NewWriteBehind(db, 0).WithTrace(tracer)
		defer wb.Close()
		// The server has no notion of averaging rounds; recorded frames
		// all carry round 0 — an audit trail of what was served, not a
		// cache-primable crawl (the client records those itself).
		scfg.OnFrame = func(f *gtrends.Frame) { wb.AddFrame(0, f) }
		if recordEvery <= 0 {
			recordEvery = time.Minute
		}
		saveErrors := obs.Default().Counter("sift_siftd_record_save_errors_total",
			"failed persists of the record store")
		go func() {
			for range time.Tick(recordEvery) {
				wb.Flush()
				if err := db.Save(record); err != nil {
					saveErrors.Inc()
					log.Printf("record: %v", err)
				}
			}
		}()
		log.Printf("recording served frames to %s every %v", record, recordEvery)
	}
	srv := gtserver.New(engine, scfg)

	if metricsAddr != "" {
		serveMetrics(metricsAddr, tracer)
		log.Printf("serving /metrics, /debug/pprof, and /debug/trace on http://%s", metricsAddr)
	}

	log.Printf("serving simulated Google Trends on http://%s (rate=%g/s burst=%d per client)", addr, rate, burst)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return httpSrv.ListenAndServe()
}
