// Command antgen generates the simulated ANT outages dataset — the
// active-probing baseline of the paper's evaluation — and optionally
// cross-validates it against SIFT's detections on the same ground truth.
//
// Usage:
//
//	antgen [-seed N] [-out records.csv] [-compare]
//
// Without -out, a summary is printed. With -compare, the full SIFT study
// runs first (~30 s) and the per-event cross-validation table is printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"sift/internal/ant"
	"sift/internal/experiments"
	"sift/internal/report"
	"sift/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "antgen:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "world seed")
	out := flag.String("out", "", "write outage records as CSV to this path")
	compare := flag.Bool("compare", false, "cross-validate against a full SIFT study")
	flag.Parse()

	from := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

	if *compare {
		fmt.Fprintln(os.Stderr, "running the full SIFT study for cross-validation (~30 s)...")
		study, err := experiments.RunStudy(context.Background(), experiments.StudyConfig{Seed: *seed})
		if err != nil {
			return err
		}
		res := experiments.AntCompare(study)
		fmt.Print(res.Table().String())
		fmt.Printf("\n%d outages seen by SIFT alone, %d by both systems\n", res.SiftOnly, res.Both)
		return nil
	}

	cfg := scenario.DefaultConfig(*seed)
	tl, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "probing %d ground-truth events from %d vantage points...\n",
		tl.Len(), len(ant.VantagePoints()))
	ds := ant.Simulate(ant.Config{Seed: *seed}, tl, from, to)

	fmt.Printf("blocks probed: %d\n", len(ds.Blocks))
	fmt.Printf("outage records: %d\n", len(ds.Records))
	fmt.Printf("probing round: %v\n", ant.Round)
	for _, vp := range ant.VantagePoints() {
		fmt.Printf("vantage point: %-5s %s\n", vp.Name, vp.Location)
	}

	if *out != "" {
		t := report.NewTable("", "block", "state", "start", "duration_minutes", "event_id")
		for _, r := range ds.Records {
			t.Add(r.Block, string(r.State), r.Start.Format(time.RFC3339),
				fmt.Sprintf("%d", int(r.Duration.Minutes())), r.EventID)
		}
		if err := os.WriteFile(*out, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("records written to %s\n", *out)
	}
	return nil
}
