// Command promcheck fetches a Prometheus text-format exposition and
// validates that it parses — the CI smoke check behind siftd's /metrics
// endpoint. It needs no external dependencies: validation is
// internal/obs's own parser, so the encoder and checker can never drift
// apart silently.
//
// Usage:
//
//	promcheck [-min-families N] <url>
//
// Exits 0 when the exposition parses and contains at least N metric
// families (default 1); prints the parse error and exits 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"sift/internal/obs"
)

func main() {
	minFamilies := flag.Int("min-families", 1, "fail unless at least this many metric families are exposed")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: promcheck [-min-families N] <url>")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), *minFamilies); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}

func check(url string, minFamilies int) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	families, samples, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return fmt.Errorf("%s: invalid exposition: %w", url, err)
	}
	if families < minFamilies {
		return fmt.Errorf("%s: %d metric families, want at least %d", url, families, minFamilies)
	}
	fmt.Printf("ok: %d families, %d samples\n", families, samples)
	return nil
}
