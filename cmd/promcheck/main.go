// Command promcheck fetches a Prometheus text-format exposition and
// validates that it parses — the CI smoke check behind siftd's /metrics
// endpoint. It needs no external dependencies: validation is
// internal/obs's own parser, so the encoder and checker can never drift
// apart silently.
//
// Usage:
//
//	promcheck [-min-families N] [-require a,b,c] <url>
//
// Exits 0 when the exposition parses, contains at least N metric
// families (default 1), and exposes every family named in -require;
// prints the failure and exits 1 otherwise.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"sift/internal/obs"
)

func main() {
	minFamilies := flag.Int("min-families", 1, "fail unless at least this many metric families are exposed")
	require := flag.String("require", "", "comma-separated family names that must be present")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: promcheck [-min-families N] [-require a,b,c] <url>")
		os.Exit(2)
	}
	if err := check(flag.Arg(0), *minFamilies, *require); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
}

func check(url string, minFamilies int, require string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	families, samples, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%s: invalid exposition: %w", url, err)
	}
	if families < minFamilies {
		return fmt.Errorf("%s: %d metric families, want at least %d", url, families, minFamilies)
	}
	if require != "" {
		present := familyNames(body)
		for _, want := range strings.Split(require, ",") {
			want = strings.TrimSpace(want)
			if want != "" && !present[want] {
				return fmt.Errorf("%s: required family %q not exposed", url, want)
			}
		}
	}
	fmt.Printf("ok: %d families, %d samples\n", families, samples)
	return nil
}

// familyNames collects the names declared by # TYPE lines.
func familyNames(body []byte) map[string]bool {
	out := make(map[string]bool)
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 3 && fields[0] == "#" && fields[1] == "TYPE" {
			out[fields[2]] = true
		}
	}
	return out
}
