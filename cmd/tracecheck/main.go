// Command tracecheck validates a span-trace export (the JSONL format
// sift detect/study write via -trace-out) against the tracer's
// structural invariants, and optionally converts it to Chrome
// trace_event JSON for Perfetto.
//
// Checks:
//
//   - every span carries well-formed 16-hex trace/span IDs, a name, and
//     a non-zero start;
//   - span IDs are unique within their trace;
//   - completed spans have end ≥ start, and their events fall inside the
//     span's interval (small slack for clock rounding);
//   - parent-child: a span's parent exists in the export, shares its
//     trace ID, and (when both are complete) contains the child's
//     interval — the ring's no-lost-parents guarantee made checkable;
//   - with -require, every named span appears at least once;
//   - with -min-spans, the export holds at least that many spans;
//   - with -faults, every listed chaos mode left at least one
//     fault.injected / fault.served event (the latency mode is skipped:
//     added delay is invisible to the client contract).
//
// Usage:
//
//	tracecheck [-min-spans N] [-require a,b,c] [-faults mode,...]
//	           [-chrome-out out.json] trace.jsonl
//
// Exit status 0 when every check passes; 1 with one line per violation
// otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"sift/internal/trace"
)

// eventSlack absorbs scheduler jitter between a span recording an event
// and the clock readings that bound its interval.
const eventSlack = 2 * time.Millisecond

func main() {
	minSpans := flag.Int("min-spans", 1, "fail unless the export holds at least this many spans")
	require := flag.String("require", "", "comma-separated span names that must each appear at least once")
	faultModes := flag.String("faults", "", "comma-separated chaos modes that must each have injected-fault span events")
	chromeOut := flag.String("chrome-out", "", "also convert the validated spans to Chrome trace_event JSON at this path")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [flags] trace.jsonl")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	spans, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: parsing export:", err)
		os.Exit(1)
	}

	var problems []string
	problems = append(problems, checkStructure(spans)...)
	problems = append(problems, checkTree(spans)...)
	if *minSpans > 0 && len(spans) < *minSpans {
		problems = append(problems, fmt.Sprintf("export holds %d spans, want at least %d", len(spans), *minSpans))
	}
	if *require != "" {
		problems = append(problems, checkRequired(spans, splitList(*require))...)
	}
	if *faultModes != "" {
		problems = append(problems, checkFaultCoverage(spans, splitList(*faultModes))...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "tracecheck:", p)
		}
		fmt.Fprintf(os.Stderr, "tracecheck: %d problem(s) in %s\n", len(problems), flag.Arg(0))
		os.Exit(1)
	}

	if *chromeOut != "" {
		out, err := os.Create(*chromeOut)
		if err == nil {
			err = trace.WriteChrome(out, spans)
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck: chrome export:", err)
			os.Exit(1)
		}
	}

	traces := map[string]bool{}
	roots, incomplete := 0, 0
	for _, sd := range spans {
		traces[sd.TraceID] = true
		if sd.ParentID == "" {
			roots++
		}
		if !sd.Complete() {
			incomplete++
		}
	}
	fmt.Printf("tracecheck: ok: %d spans, %d traces, %d roots, %d incomplete (%s)\n",
		len(spans), len(traces), roots, incomplete, flag.Arg(0))
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// validID reports whether id is the canonical 16-hex form the tracer
// emits.
func validID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// checkStructure validates each span in isolation: IDs, names,
// monotonic timestamps, and event containment.
func checkStructure(spans []*trace.SpanData) []string {
	var problems []string
	seen := map[string]string{} // trace_id/span_id → name
	for i, sd := range spans {
		where := fmt.Sprintf("span %d (%s %s)", i+1, sd.Name, sd.SpanID)
		if !validID(sd.TraceID) {
			problems = append(problems, where+": malformed trace_id "+sd.TraceID)
		}
		if !validID(sd.SpanID) {
			problems = append(problems, where+": malformed span_id "+sd.SpanID)
		}
		if sd.ParentID != "" && !validID(sd.ParentID) {
			problems = append(problems, where+": malformed parent_id "+sd.ParentID)
		}
		if sd.Name == "" {
			problems = append(problems, where+": empty span name")
		}
		if sd.Start.IsZero() {
			problems = append(problems, where+": zero start time")
		}
		key := sd.TraceID + "/" + sd.SpanID
		if prev, dup := seen[key]; dup {
			problems = append(problems, fmt.Sprintf("%s: span_id reused within trace (first seen on %q)", where, prev))
		}
		seen[key] = sd.Name
		if sd.Complete() && sd.End.Before(sd.Start) {
			problems = append(problems, fmt.Sprintf("%s: end %s precedes start %s",
				where, sd.End.Format(time.RFC3339Nano), sd.Start.Format(time.RFC3339Nano)))
		}
		for _, ev := range sd.Events {
			if ev.Time.Before(sd.Start.Add(-eventSlack)) {
				problems = append(problems, fmt.Sprintf("%s: event %q precedes span start", where, ev.Name))
			}
			if sd.Complete() && ev.Time.After(sd.End.Add(eventSlack)) {
				problems = append(problems, fmt.Sprintf("%s: event %q after span end", where, ev.Name))
			}
		}
	}
	return problems
}

// checkTree validates parent-child invariants. The tracer's ring evicts
// oldest-first and a parent always ends after its children, so any
// surviving child's parent must also survive: a missing parent is
// evidence of a lost span, not benign truncation. Interval containment
// is only checked when both ends are recorded — an interrupted export
// legitimately carries open spans.
func checkTree(spans []*trace.SpanData) []string {
	var problems []string
	byID := make(map[string]*trace.SpanData, len(spans))
	for _, sd := range spans {
		byID[sd.TraceID+"/"+sd.SpanID] = sd
	}
	for i, sd := range spans {
		if sd.ParentID == "" {
			continue
		}
		where := fmt.Sprintf("span %d (%s %s)", i+1, sd.Name, sd.SpanID)
		parent, ok := byID[sd.TraceID+"/"+sd.ParentID]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: parent %s missing from export (lost parent)", where, sd.ParentID))
			continue
		}
		if sd.Start.Before(parent.Start.Add(-eventSlack)) {
			problems = append(problems, fmt.Sprintf("%s: starts before its parent %q", where, parent.Name))
		}
		if sd.Complete() && parent.Complete() && sd.End.After(parent.End.Add(eventSlack)) {
			problems = append(problems, fmt.Sprintf("%s: ends after its parent %q", where, parent.Name))
		}
	}
	return problems
}

// checkRequired verifies each named span appears at least once.
func checkRequired(spans []*trace.SpanData, names []string) []string {
	count := map[string]int{}
	for _, sd := range spans {
		count[sd.Name]++
	}
	var problems []string
	for _, name := range names {
		if count[name] == 0 {
			problems = append(problems, fmt.Sprintf("required span %q never appears", name))
		}
	}
	return problems
}

// checkFaultCoverage verifies every listed chaos mode left at least one
// fault event on some span — fault.injected from the client-side wrap
// (internal/faults) or fault.served from gtserver. The latency mode is
// skipped: an added delay violates no client-visible contract, so no
// event marks it.
func checkFaultCoverage(spans []*trace.SpanData, modes []string) []string {
	seen := map[string]int{}
	for _, sd := range spans {
		for _, ev := range sd.Events {
			if ev.Name != "fault.injected" && ev.Name != "fault.served" {
				continue
			}
			if mode, ok := ev.Attrs["mode"].(string); ok {
				seen[mode]++
			}
		}
	}
	var problems []string
	for _, mode := range modes {
		if mode == "latency" || mode == "none" {
			continue
		}
		if seen[mode] == 0 {
			known := make([]string, 0, len(seen))
			for m := range seen {
				known = append(known, m)
			}
			sort.Strings(known)
			problems = append(problems, fmt.Sprintf("no fault events for chaos mode %q (saw: %s)",
				mode, strings.Join(known, ", ")))
		}
	}
	return problems
}
