// Command slocheck validates the shipped SLO rule pack: first its
// well-formedness (slo.ValidateRules over the default pack, compressed
// and uncompressed), then — unless -lint-only — a synthetic end-to-end
// drill that drives the pack's headline burn-rate rule through its full
// pending → firing → resolved lifecycle against a private registry with
// a synthetic clock. CI runs this after the live alert-lifecycle check
// so a rule edit that can no longer fire fails the build even if the
// live run happened to stay green.
//
// Usage:
//
//	slocheck [-lint-only]
//
// Exit status 0 when every check passes; 1 with a diagnostic otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sift/internal/obs"
	"sift/internal/slo"
)

func main() {
	lintOnly := flag.Bool("lint-only", false, "validate rule-pack well-formedness only, skip the firing drill")
	flag.Parse()
	if err := run(*lintOnly); err != nil {
		fmt.Fprintln(os.Stderr, "slocheck:", err)
		os.Exit(1)
	}
}

func run(lintOnly bool) error {
	pack := slo.DefaultRules()
	if err := slo.ValidateRules(pack); err != nil {
		return fmt.Errorf("default pack: %w", err)
	}
	for _, factor := range []float64{10, 60, 600} {
		if err := slo.ValidateRules(slo.Compress(pack, factor)); err != nil {
			return fmt.Errorf("pack compressed %gx: %w", factor, err)
		}
	}
	fmt.Printf("ok: %d rules lint clean (and at 10x/60x/600x compression)\n", len(pack))
	if lintOnly {
		return nil
	}
	if err := firingDrill(); err != nil {
		return err
	}
	fmt.Println("ok: archiver-crawl-failure completed pending → firing → resolved in the drill")
	return nil
}

// firingDrill replays a crawl-failure storm against the compressed
// default pack: healthy history, then sustained failures until the
// burn-rate rule fires, then recovery until it resolves. Every eval
// uses a synthetic clock, so the drill is deterministic and finishes in
// milliseconds of wall time.
func firingDrill() error {
	const rule = "archiver-crawl-failure"
	pack := slo.Compress(slo.DefaultRules(), 60)
	reg := obs.NewRegistry()
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	every := 2 * time.Second
	eng, err := slo.New(slo.Config{
		Rules:   pack,
		Metrics: reg,
		Every:   every,
		Now:     func() time.Time { return now },
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	crawls := reg.CounterVec("sift_archiver_crawls_total", "per-task crawls by outcome", "outcome")

	state := func() string {
		for _, a := range eng.Alerts() {
			if a.Rule == rule {
				return a.State
			}
		}
		return "absent"
	}
	step := func(outcome string, n float64) {
		now = now.Add(every)
		crawls.With(outcome).Add(n)
		eng.EvalAt(now, reg.Snapshot())
	}
	waitFor := func(want, outcome string, n float64, limit int) error {
		for i := 0; i < limit; i++ {
			if state() == want {
				return nil
			}
			step(outcome, n)
		}
		return fmt.Errorf("rule %s stuck in %q after %d evals, want %q", rule, state(), limit, want)
	}

	// Healthy history fills both burn windows with success.
	for i := 0; i < 20; i++ {
		step("ok", 5)
	}
	if got := state(); got != "inactive" {
		return fmt.Errorf("rule %s is %q on a healthy history, want inactive", rule, got)
	}
	// Sustained failure: the rule must pass through pending on its way
	// to firing — never directly.
	if err := waitFor("pending", "error", 5, 60); err != nil {
		return err
	}
	if err := waitFor("firing", "error", 5, 60); err != nil {
		return err
	}
	if reg.Snapshot().Family("sift_slo_alerts_firing").Total() != 1 {
		return fmt.Errorf("sift_slo_alerts_firing gauge did not follow the rule to firing")
	}
	// Recovery: success resumes, the burn ratio decays out of both
	// windows, and the clear hold elapses.
	if err := waitFor("resolved", "ok", 10, 120); err != nil {
		return err
	}
	// Lifecycle order is recorded in the transition ring.
	var path []string
	for _, tr := range eng.RecentTransitions(0) {
		if tr.Rule == rule {
			path = append(path, tr.To)
		}
	}
	want := []string{"pending", "firing", "resolved"}
	if len(path) < len(want) {
		return fmt.Errorf("transition path %v shorter than %v", path, want)
	}
	for i, w := range want {
		if path[i] != w {
			return fmt.Errorf("transition path %v, want prefix %v", path, want)
		}
	}
	return nil
}
