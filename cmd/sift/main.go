// Command sift is the command-line front end of the SIFT reproduction:
// it detects user-affecting Internet outages from (simulated) Google
// Trends data and reproduces the paper's evaluation.
//
// Subcommands:
//
//	sift detect -state TX -from 2021-02-01 -to 2021-03-01
//	    Run the processing pipeline for one state and print the detected
//	    spikes. Add -server http://host:port to crawl a running siftd
//	    over HTTP through a fetcher pool; the default samples an
//	    in-process engine.
//
//	sift study [-out study.json]
//	    Run the full two-year, 51-state study and print the summary; the
//	    optional -out stores the spike database as JSON.
//
//	sift experiments [-out EXPERIMENTS.md]
//	    Run every table and figure of the paper's evaluation and print
//	    (or write) the paper-vs-measured report.
//
//	sift alerts -metrics snap.json [-prev earlier.json -interval 5m]
//	    Evaluate the default SLO rule pack against a -metrics-out
//	    snapshot: the offline counterpart of siftd -slo, for postmortems
//	    and CI gates. -fail-on-breach exits 1 when any rule breaches.
//
// Common flags: -seed, -from, -to, -server, -fetchers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sift/internal/core"
	"sift/internal/engine"
	"sift/internal/geo"
	"sift/internal/gtclient"
	"sift/internal/gtrends"
	"sift/internal/obs"
	"sift/internal/scenario"
	"sift/internal/searchmodel"
	"sift/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	obs.RegisterBuildInfo(obs.Default())
	var err error
	switch os.Args[1] {
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "study":
		err = cmdStudy(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "alerts":
		err = cmdAlerts(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sift: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sift:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sift <subcommand> [flags]

subcommands:
  detect       detect spikes for one state over a time range
  study        run the full two-year, 51-state study
  experiments  reproduce every table and figure of the evaluation
  alerts       evaluate the SLO rule pack against a metrics snapshot

run "sift <subcommand> -h" for flags`)
}

// commonFlags registers the flags shared by all subcommands.
type commonFlags struct {
	seed     *int64
	from, to *string
	server   *string
	fetchers *int
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	return &commonFlags{
		seed:     fs.Int64("seed", 1, "world seed (in-process mode)"),
		from:     fs.String("from", "2020-01-01", "range start (YYYY-MM-DD)"),
		to:       fs.String("to", "2022-01-01", "range end (YYYY-MM-DD)"),
		server:   fs.String("server", "", "siftd base URL; empty samples an in-process engine"),
		fetchers: fs.Int("fetchers", 6, "fetcher units (HTTP mode)"),
	}
}

func (c *commonFlags) window() (from, to time.Time, err error) {
	from, err = time.Parse("2006-01-02", *c.from)
	if err != nil {
		return from, to, fmt.Errorf("bad -from: %v", err)
	}
	to, err = time.Parse("2006-01-02", *c.to)
	if err != nil {
		return from, to, fmt.Errorf("bad -to: %v", err)
	}
	return from.UTC(), to.UTC(), nil
}

// fetcher builds the Trends data source: an HTTP fetcher pool against a
// running siftd, or an in-process engine over a freshly generated world.
func (c *commonFlags) fetcher(from, to time.Time) (gtrends.Fetcher, error) {
	if *c.server != "" {
		return gtclient.NewPool(*c.server, *c.fetchers, nil)
	}
	cfg := scenario.DefaultConfig(*c.seed)
	cfg.Start, cfg.End = from, to
	tl, err := scenario.Build(cfg)
	if err != nil {
		return nil, err
	}
	model := searchmodel.New(*c.seed, tl, searchmodel.Params{})
	return gtrends.EngineFetcher{Engine: gtrends.NewEngine(model, gtrends.Config{})}, nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	common := addCommon(fs)
	state := fs.String("state", "TX", "state code")
	term := fs.String("term", gtrends.TopicInternetOutage, "search term")
	minDur := fs.Int("min-duration", 1, "only print spikes of at least this many hours")
	dbPath := fs.String("db", "", "record crawled frames, the series, and spikes into this JSON store")
	cacheSize := fs.Int("cache-size", 0, "frame-cache capacity in frames (0 disables caching)")
	incremental := fs.Bool("incremental", false, "with -db: prime the frame cache from the existing store and refetch only missing windows")
	retries := fs.Int("retries", 2, "in-round re-fetches after a transient failure (0 disables)")
	analysisWorkers := fs.Int("analysis-workers", 0, "concurrent analysis workers, recorded in the crawl-health record (0 takes GOMAXPROCS)")
	adaptive := fs.Bool("adaptive", false, "stop crawl rounds early once the spike set and series CI both converge (variance-weighted merge + anchor calibration)")
	targetCI := fs.Float64("target-ci", 0, "adaptive convergence target: per-hour CI half-width on the 0-100 series (0 takes the default)")
	minRounds := fs.Int("min-rounds", 2, "rounds before convergence may stop the crawl (0 = no floor, may stop after round 1)")
	obsOut := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *targetCI != 0 && !*adaptive {
		return fmt.Errorf("-target-ci needs -adaptive")
	}
	tracer, err := obsOut.setup()
	if err != nil {
		return err
	}
	defer obsOut.hookSignals()()
	if *analysisWorkers <= 0 {
		*analysisWorkers = runtime.GOMAXPROCS(0)
	}
	obs.Default().Gauge("sift_analysis_workers",
		"bounded parallelism of the last analysis pass").Set(float64(*analysisWorkers))
	if *incremental && *dbPath == "" {
		return fmt.Errorf("-incremental needs -db")
	}
	if !geo.Valid(geo.State(*state)) {
		return fmt.Errorf("unknown state %q", *state)
	}
	from, to, err := common.window()
	if err != nil {
		return err
	}
	fetcher, err := common.fetcher(from, to)
	if err != nil {
		return err
	}

	p := &core.Pipeline{Fetcher: fetcher}
	// The flag's 0 means "no retries"; the config's 0 means "default" —
	// RetriesFlag bridges the two.
	p.Cfg.FetchRetries = core.RetriesFlag(*retries)
	// Same bridge for -min-rounds: the flag's 0 means "no floor", the
	// config's 0 means "default" — MinRoundsFlag maps 0 to the sentinel.
	p.Cfg.MinRounds = core.MinRoundsFlag(*minRounds)
	p.Cfg.Adaptive = *adaptive
	p.Cfg.TargetCI = *targetCI
	p.Cfg.Tracer = tracer
	if *cacheSize > 0 || *incremental {
		p.Cfg.Cache = engine.NewFrameCache(*cacheSize)
	}
	var db *store.DB
	var wb *store.WriteBehind
	if *dbPath != "" {
		db = store.New()
		if *incremental {
			if prev, err := store.Load(*dbPath); err == nil {
				db = prev
				db.EachFrame(p.Cfg.Cache.Prime)
				p.Cfg.Memo = core.NewStitchMemo()
			} else if !errors.Is(err, os.ErrNotExist) {
				// A corrupt or unreadable store is worth a warning, but an
				// absent one just means this is the first crawl.
				fmt.Fprintf(os.Stderr, "sift: ignoring existing store: %v\n", err)
			}
		}
		wb = store.NewWriteBehind(db, 0).WithTrace(tracer)
		p.Cfg.OnFrame = wb.AddFrame
	}
	res, err := p.Run(context.Background(), geo.State(*state), *term, from, to)
	if err != nil {
		return err
	}
	if db != nil {
		wb.PutSeries(*term, geo.State(*state), res.Series)
		wb.PutSpikes(*term, geo.State(*state), res.Spikes)
		h := res.Health()
		h.AnalysisWorkers = *analysisWorkers
		wb.PutHealth(*term, geo.State(*state), h)
		wb.Close()
		if err := db.Save(*dbPath); err != nil {
			return err
		}
		fmt.Printf("recorded %d frames + series + spikes to %s\n", db.FrameCount(), *dbPath)
	}
	fmt.Printf("%s %q [%s, %s): %d spikes, %d frames, %d rounds (converged=%v)\n",
		*state, *term, from.Format("2006-01-02"), to.Format("2006-01-02"),
		len(res.Spikes), res.Frames, res.Rounds, res.Converged)
	if *adaptive {
		fmt.Printf("adaptive: %d rounds saved, ci half-width %.3f, %d anchor-rescaled seams\n",
			res.RoundsSaved, res.CIHalfWidth, res.AnchorRescales)
	}
	if p.Cfg.Cache != nil {
		fmt.Printf("cache: %d hits, %d misses, %d reused stitch hours\n",
			res.CacheHits, res.CacheMisses, res.ReusedStitchHours)
	}
	for _, sp := range res.Spikes {
		if int(sp.Duration().Hours()) < *minDur {
			continue
		}
		fmt.Printf("  %s  dur=%2dh  mag=%5.1f  rank=%d\n",
			sp.Start.Format("2006-01-02 15:04"), int(sp.Duration().Hours()), sp.Magnitude, sp.Rank)
	}
	obsOut.flush()
	return nil
}
