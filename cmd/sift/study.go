package main

import (
	"context"
	"flag"
	"fmt"
	"sort"
	"time"

	"sift/internal/core"
	"sift/internal/experiments"
	"sift/internal/faults"
	"sift/internal/geo"
	"sift/internal/gtrends"
	"sift/internal/store"
)

func cmdStudy(args []string) error {
	fs := flag.NewFlagSet("study", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "world seed")
	from := fs.String("from", "2020-01-01", "range start (YYYY-MM-DD)")
	to := fs.String("to", "2022-01-01", "range end (YYYY-MM-DD)")
	out := fs.String("out", "", "write the spike database as JSON to this path")
	workers := fs.Int("workers", 8, "concurrent states")
	analysisWorkers := fs.Int("analysis-workers", 0, "concurrent analysis workers (0 takes GOMAXPROCS)")
	cacheSize := fs.Int("cache-size", 0, "shared frame-cache capacity in frames (0 disables caching)")
	faultSpec := fs.String("faults", "off", `fault injection: "off", "default", or a JSON plan path`)
	tolerance := fs.Int("fault-tolerance", 0, "permanent frame failures tolerated per round (0 aborts on the first)")
	retries := fs.Int("retries", 2, "in-round re-fetches after a transient failure (0 disables)")
	adaptive := fs.Bool("adaptive", false, "stop crawl rounds early once the spike set and series CI both converge (variance-weighted merge + anchor calibration)")
	targetCI := fs.Float64("target-ci", 0, "adaptive convergence target: per-hour CI half-width on the 0-100 series (0 takes the default)")
	minRounds := fs.Int("min-rounds", 2, "rounds before convergence may stop a state's crawl (0 = no floor, may stop after round 1)")
	obsOut := addObs(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *targetCI != 0 && !*adaptive {
		return fmt.Errorf("-target-ci needs -adaptive")
	}
	tracer, err := obsOut.setup()
	if err != nil {
		return err
	}
	defer obsOut.hookSignals()()
	start, err := time.Parse("2006-01-02", *from)
	if err != nil {
		return fmt.Errorf("bad -from: %v", err)
	}
	end, err := time.Parse("2006-01-02", *to)
	if err != nil {
		return fmt.Errorf("bad -to: %v", err)
	}

	var plan *faults.Plan
	switch *faultSpec {
	case "", "off":
	case "default":
		p := faults.DefaultPlan(*seed)
		plan = &p
	default:
		p, err := faults.LoadPlan(*faultSpec)
		if err != nil {
			return fmt.Errorf("bad -faults: %v", err)
		}
		plan = &p
	}

	fmt.Printf("running study: seed=%d window=[%s, %s)\n", *seed, *from, *to)
	if plan != nil {
		fmt.Printf("chaos enabled: %d fault rules, seed=%d, tolerance=%d\n",
			len(plan.Rules), plan.Seed, *tolerance)
	}
	study, err := experiments.RunStudy(context.Background(), experiments.StudyConfig{
		Seed:            *seed,
		Start:           start.UTC(),
		End:             end.UTC(),
		StateWorkers:    *workers,
		AnalysisWorkers: *analysisWorkers,
		CacheSize:       *cacheSize,
		Faults:          plan,
		Tracer:          tracer,
		Pipeline: core.PipelineConfig{
			FrameTolerance: *tolerance,
			FetchRetries:   core.RetriesFlag(*retries),
			MinRounds:      core.MinRoundsFlag(*minRounds),
			Adaptive:       *adaptive,
			TargetCI:       *targetCI,
		},
	})
	if err != nil {
		return err
	}
	if *cacheSize > 0 {
		cs := study.CacheStats()
		fmt.Printf("frame cache: %d hits, %d misses, %d coalesced, %d evictions\n",
			cs.Hits, cs.Misses, cs.Coalesced, cs.Evictions)
	}

	head := experiments.Headline(study)
	fmt.Print(head.Table().String())
	mean, converged := study.MeanRounds()
	fmt.Printf("\n%d spikes across %d states in %v (%.1f rounds avg, %d converged)\n",
		len(study.Spikes), len(study.Results), study.Elapsed.Round(time.Second), mean, converged)
	if *adaptive {
		saved, rescales := 0, 0
		for _, h := range study.Health {
			saved += h.RoundsSaved
			rescales += h.AnchorRescales
		}
		fmt.Printf("adaptive: %d crawl rounds saved, %d anchor-rescaled seams\n", saved, rescales)
	}

	failed, gaps, unanchored := 0, 0, 0
	for _, h := range study.Health {
		failed += h.FailedFetches
		gaps += len(h.Gaps)
		unanchored += h.UnanchoredStitches
	}
	if failed > 0 || gaps > 0 || unanchored > 0 {
		fmt.Printf("crawl health: %d failed fetches, %d unfilled frame windows, %d unanchored stitches\n",
			failed, gaps, unanchored)
		for _, st := range sortedStates(study.Health) {
			for _, g := range study.Health[st].Gaps {
				fmt.Printf("  gap %s %s+%dh: %s\n", st, g.Start.Format("2006-01-02T15"), g.Hours, g.LastErr)
			}
		}
	}

	if *out != "" {
		db := store.New()
		for st, res := range study.Results {
			db.PutSeries(gtrends.TopicInternetOutage, st, res.Series)
			db.PutSpikes(gtrends.TopicInternetOutage, st, res.Spikes)
			db.PutHealth(gtrends.TopicInternetOutage, st, study.Health[st])
		}
		if err := db.Save(*out); err != nil {
			return err
		}
		fmt.Printf("spike database written to %s\n", *out)
	}
	obsOut.flush()
	return nil
}

// sortedStates returns the health map's keys in order, for stable output.
func sortedStates(m map[geo.State]core.CrawlHealth) []geo.State {
	out := make([]geo.State, 0, len(m))
	for st := range m {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
