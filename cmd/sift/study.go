package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"sift/internal/experiments"
	"sift/internal/gtrends"
	"sift/internal/store"
)

func cmdStudy(args []string) error {
	fs := flag.NewFlagSet("study", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "world seed")
	from := fs.String("from", "2020-01-01", "range start (YYYY-MM-DD)")
	to := fs.String("to", "2022-01-01", "range end (YYYY-MM-DD)")
	out := fs.String("out", "", "write the spike database as JSON to this path")
	workers := fs.Int("workers", 8, "concurrent states")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start, err := time.Parse("2006-01-02", *from)
	if err != nil {
		return fmt.Errorf("bad -from: %v", err)
	}
	end, err := time.Parse("2006-01-02", *to)
	if err != nil {
		return fmt.Errorf("bad -to: %v", err)
	}

	fmt.Printf("running study: seed=%d window=[%s, %s)\n", *seed, *from, *to)
	study, err := experiments.RunStudy(context.Background(), experiments.StudyConfig{
		Seed:         *seed,
		Start:        start.UTC(),
		End:          end.UTC(),
		StateWorkers: *workers,
	})
	if err != nil {
		return err
	}

	head := experiments.Headline(study)
	fmt.Print(head.Table().String())
	mean, converged := study.MeanRounds()
	fmt.Printf("\n%d spikes across %d states in %v (%.1f rounds avg, %d converged)\n",
		len(study.Spikes), len(study.Results), study.Elapsed.Round(time.Second), mean, converged)

	if *out != "" {
		db := store.New()
		for st, res := range study.Results {
			db.PutSeries(gtrends.TopicInternetOutage, st, res.Series)
			db.PutSpikes(gtrends.TopicInternetOutage, st, res.Spikes)
		}
		if err := db.Save(*out); err != nil {
			return err
		}
		fmt.Printf("spike database written to %s\n", *out)
	}
	return nil
}
