package main

// sift alerts: one-shot SLO evaluation against a -metrics-out snapshot
// file, for postmortems and CI gates — the offline counterpart of the
// live engine siftd -slo runs. With a single snapshot only instant
// (gauge) rules can evaluate; add -prev (an earlier snapshot of the
// same process) and -interval to give windowed rules a baseline.

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"sift/internal/obs"
	"sift/internal/slo"
)

func cmdAlerts(args []string) error {
	fs := flag.NewFlagSet("alerts", flag.ContinueOnError)
	metrics := fs.String("metrics", "", "JSON metrics snapshot to evaluate (required; from -metrics-out)")
	prev := fs.String("prev", "", "earlier snapshot of the same process, enabling windowed rules")
	interval := fs.Duration("interval", 5*time.Minute, "wall time between -prev and -metrics")
	compress := fs.Float64("compress", 1, "divide every rule duration by this factor before evaluating")
	failOnBreach := fs.Bool("fail-on-breach", false, "exit 1 if any rule is breaching")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metrics == "" {
		return fmt.Errorf("alerts: -metrics is required")
	}
	intervalSet := false
	fs.Visit(func(f *flag.Flag) { intervalSet = intervalSet || f.Name == "interval" })
	if *prev == "" && intervalSet {
		return fmt.Errorf("alerts: -interval without -prev has nothing to space")
	}
	if *interval <= 0 {
		return fmt.Errorf("alerts: -interval must be positive")
	}
	if *compress < 1 {
		return fmt.Errorf("alerts: -compress must be >= 1")
	}

	cur, err := obs.LoadSnapshot(*metrics)
	if err != nil {
		return err
	}
	rules := slo.DefaultRules()
	if *compress > 1 {
		rules = slo.Compress(rules, *compress)
	}
	// The engine's own sift_slo_* families land in a throwaway registry
	// so a one-shot evaluation never pollutes the process default.
	now := time.Now().UTC()
	eng, err := slo.New(slo.Config{
		Rules:   rules,
		Metrics: obs.NewRegistry(),
		Now:     func() time.Time { return now },
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	if *prev != "" {
		base, err := obs.LoadSnapshot(*prev)
		if err != nil {
			return err
		}
		eng.EvalAt(now.Add(-*interval), base)
	}
	eng.EvalAt(now, cur)

	breaching := 0
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "RULE\tSEVERITY\tSTATUS\tVALUE\tTHRESHOLD")
	for _, a := range eng.Alerts() {
		status := "ok"
		switch {
		case !a.HaveData:
			status = "no data"
		case a.Breaching:
			status = "BREACH"
			breaching++
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.4g\t%.4g\n", a.Rule, a.Severity, status, a.Value, a.Threshold)
	}
	w.Flush()
	if breaching > 0 {
		fmt.Printf("%d of %d rules breaching\n", breaching, len(rules))
		if *failOnBreach {
			os.Exit(1)
		}
	}
	return nil
}
