package main

import (
	"fmt"
	"os"

	"sift/internal/obs"
)

// writeMetricsSnapshot dumps the process's default metric registry as
// indented JSON — the post-run counterpart of siftd's live /metrics
// listener, for one-shot commands that exit before anything could
// scrape them.
func writeMetricsSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics snapshot: %w", err)
	}
	if err := obs.Default().WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics snapshot: %w", err)
	}
	return f.Close()
}
