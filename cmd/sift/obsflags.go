package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"sift/internal/trace"
)

// obsFlags bundles the observability outputs shared by detect and study:
// the post-run metrics snapshot, the span-trace export, and the
// structured log sink. One idempotent flush path serves both the normal
// return and the signal hook, so an interrupted crawl still leaves its
// snapshot and trace on disk instead of dying with empty hands.
type obsFlags struct {
	metricsOut *string
	traceOut   *string
	logFormat  *string
	logLevel   *string

	tracer *trace.Tracer
	once   sync.Once
}

// addObs registers the shared observability flags on a subcommand.
func addObs(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		metricsOut: fs.String("metrics-out", "",
			"write a JSON metrics snapshot to this path after the run (also flushed on SIGINT/SIGTERM)"),
		traceOut: fs.String("trace-out", "",
			"write the run's span trace to this path: .jsonl/.ndjson for one span per line, anything else for Chrome trace_event JSON (load in Perfetto)"),
		logFormat: fs.String("log-format", "",
			`structured logs on stderr: "text" or "json" (empty keeps the default warn-only text sink)`),
		logLevel: fs.String("log-level", "info",
			"minimum structured log level: debug, info, warn, error"),
	}
}

// parseLevel maps the -log-level flag onto a sink threshold.
func parseLevel(s string) (trace.Level, bool) {
	switch s {
	case "debug":
		return trace.LevelDebug, true
	case "info", "":
		return trace.LevelInfo, true
	case "warn":
		return trace.LevelWarn, true
	case "error":
		return trace.LevelError, true
	}
	return 0, false
}

// setup configures the process log sink and builds the run's tracer.
// The tracer is non-nil whenever any trace surface was requested, so
// JSON log lines carry trace/span IDs even without a -trace-out file.
// A nil return with nil error means tracing is off.
func (o *obsFlags) setup() (*trace.Tracer, error) {
	if *o.logFormat != "" {
		f, ok := trace.ParseFormat(*o.logFormat)
		if !ok {
			return nil, fmt.Errorf("bad -log-format %q (want text or json)", *o.logFormat)
		}
		min, ok := parseLevel(*o.logLevel)
		if !ok {
			return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", *o.logLevel)
		}
		trace.SetDefaultSink(trace.NewSink(os.Stderr, f, min))
	}
	if *o.traceOut != "" || *o.logFormat != "" {
		o.tracer = trace.New(trace.Config{})
	}
	return o.tracer, nil
}

// flush writes the requested outputs exactly once; the normal exit path
// and the signal hook may both reach it.
func (o *obsFlags) flush() {
	o.once.Do(func() {
		if o.tracer != nil && *o.traceOut != "" {
			if err := o.tracer.WriteFile(*o.traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "sift: trace export:", err)
			} else {
				fmt.Printf("trace written to %s\n", *o.traceOut)
			}
		}
		if *o.metricsOut != "" {
			if err := writeMetricsSnapshot(*o.metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "sift:", err)
			} else {
				fmt.Printf("metrics snapshot written to %s\n", *o.metricsOut)
			}
		}
	})
}

// hookSignals arms a SIGINT/SIGTERM handler that flushes the
// observability outputs before exiting with the signal's conventional
// status. The returned stop func disarms the hook so the normal exit
// path flushes on its own schedule.
func (o *obsFlags) hookSignals() (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			fmt.Fprintf(os.Stderr, "sift: caught %v, flushing observability outputs\n", sig)
			o.flush()
			code := 1
			if s, ok := sig.(syscall.Signal); ok {
				code = 128 + int(s)
			}
			os.Exit(code)
		case <-done:
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
