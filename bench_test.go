// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
//
// The full two-year, 51-state study is computed once and shared; the
// per-table benches then measure the analysis step and report the
// headline statistic of each experiment as a custom metric, so
// `go test -bench=. -benchmem` both regenerates and times the paper's
// results. Custom metrics carry the measured values (e.g. top10_share,
// frac_ge10_states) next to the timing columns.
package sift

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sift/internal/core"
	"sift/internal/experiments"
	"sift/internal/gtrends"
	"sift/internal/scenario"
	"sift/internal/searchmodel"
	"sift/internal/simworld"
	"sift/internal/timeseries"
	"sift/internal/trace"
)

var (
	benchOnce  sync.Once
	benchStudy *experiments.Study
	benchErr   error
)

func fullStudy(b *testing.B) *experiments.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = experiments.RunStudy(context.Background(), experiments.StudyConfig{Seed: 1})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

// ---- headline counts (§1, §3.2) ----

// BenchmarkHeadlineCounts times the headline tally at both ends of the
// -analysis-workers axis; the counts themselves are asserted identical,
// so the sub-benchmarks differ only in wall time.
func BenchmarkHeadlineCounts(b *testing.B) {
	study := fullStudy(b)
	prev := study.Cfg.AnalysisWorkers
	defer func() { study.Cfg.AnalysisWorkers = prev }()
	var totals [2]int
	for wi, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			study.Cfg.AnalysisWorkers = w
			b.ResetTimer()
			var r experiments.HeadlineResult
			for i := 0; i < b.N; i++ {
				r = experiments.Headline(study)
			}
			totals[wi] = r.Total
			b.ReportMetric(float64(r.Total), "spikes_total")
			b.ReportMetric(float64(r.In2020), "spikes_2020")
			b.ReportMetric(float64(r.In2021), "spikes_2021")
		})
	}
	if totals[0] != totals[1] {
		b.Fatalf("headline totals diverged across worker counts: %d vs %d", totals[0], totals[1])
	}
}

func BenchmarkConvergenceRounds(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		mean, _ = study.MeanRounds()
	}
	b.ReportMetric(mean, "rounds_mean") // paper: 6
}

// ---- Fig. 1 / Fig. 2 ----

func BenchmarkFig1TexasTimeline(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1TexasTimeline(study)
		if err != nil {
			b.Fatal(err)
		}
		n = len(r.Spikes)
	}
	b.ReportMetric(float64(n), "window_spikes")
}

func BenchmarkFig2Workflow(b *testing.B) {
	study := fullStudy(b)
	ctx := context.Background()
	b.ResetTimer()
	var dur float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2Workflow(ctx, study)
		if err != nil {
			b.Fatal(err)
		}
		dur = r.Spike.Duration().Hours()
	}
	b.ReportMetric(dur, "spike_hours") // paper: 10
}

// ---- Fig. 3 / Table 1 / Fig. 4 ----

func BenchmarkFig3StateCDF(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var share float64
	for i := 0; i < b.N; i++ {
		share = experiments.Fig3(study).Top10Share()
	}
	b.ReportMetric(share, "top10_share") // paper: 0.51
}

func BenchmarkFig3DurationCDF(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = experiments.Fig3(study).FracAtLeast3h
	}
	b.ReportMetric(frac, "frac_ge3h") // paper: 0.10
}

func BenchmarkTable1Impact(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var top float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(study, 7)
		top = rows[0].Spike.Duration().Hours()
	}
	b.ReportMetric(top, "top_duration_hours") // paper: 45
}

func BenchmarkFig4Weekday(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var dip float64
	for i := 0; i < b.N; i++ {
		dip = experiments.Fig4(study).WeekendDip()
	}
	b.ReportMetric(dip, "weekend_over_weekday") // paper: < 1
}

// ---- Fig. 5 / Table 2 / Facebook lag ----

func BenchmarkFig5AreaCDF(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = experiments.Fig5(study).FracAtLeast10
	}
	b.ReportMetric(frac, "frac_ge10_states") // paper: 0.11
}

func BenchmarkTable2Extent(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var widest float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(study, 9)
		widest = float64(rows[0].States)
	}
	b.ReportMetric(widest, "widest_states") // paper: 34
}

func BenchmarkFacebookLag(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var lagged float64
	for i := 0; i < b.N; i++ {
		lagged = float64(experiments.FacebookLag(study).Lagged)
	}
	b.ReportMetric(lagged, "lagged_states") // paper: 22
}

// ---- Fig. 6 / Table 3 / heavy hitters / ANT ----

func BenchmarkFig6PowerMonthly(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var share float64
	for i := 0; i < b.N; i++ {
		share = experiments.Fig6(study).PowerShare
	}
	b.ReportMetric(share, "power_share_ge5h") // paper: 0.73
}

func BenchmarkTable3Power(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var top float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(study, 7)
		top = rows[0].Spike.Duration().Hours()
	}
	b.ReportMetric(top, "top_power_hours") // paper: 45
}

func BenchmarkHeavyHitters(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var cover float64
	for i := 0; i < b.N; i++ {
		cover = float64(experiments.HeavyHitters(study).CoverHalf)
	}
	b.ReportMetric(cover, "terms_covering_half") // paper: 33
}

func BenchmarkAntCrossValidation(b *testing.B) {
	study := fullStudy(b)
	b.ResetTimer()
	var siftOnly float64
	for i := 0; i < b.N; i++ {
		siftOnly = float64(experiments.AntCompare(study).SiftOnly)
	}
	b.ReportMetric(siftOnly, "sift_only_outages")
}

// ---- pipeline micro-benchmarks ----

// BenchmarkPipelineStateMonth times one end-to-end crawl–stitch–detect
// run: one state, one month, fresh samples each round.
func BenchmarkPipelineStateMonth(b *testing.B) {
	storm := &simworld.Event{
		ID: "storm", Name: "Winter storm", Kind: simworld.KindPower,
		Cause: simworld.CauseWinterStorm,
		Start: time.Date(2021, 2, 15, 8, 0, 0, 0, time.UTC), Duration: 45 * time.Hour,
		Impacts: []simworld.Impact{{State: "TX", Intensity: 2000}},
	}
	model := searchmodel.New(1, simworld.NewTimeline([]*simworld.Event{storm}), searchmodel.Params{})
	fetcher := gtrends.EngineFetcher{Engine: gtrends.NewEngine(model, gtrends.Config{})}
	from := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &core.Pipeline{Fetcher: fetcher}
		if _, err := p.Run(context.Background(), "TX", gtrends.TopicInternetOutage, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetector times spike extraction on a two-year series.
func BenchmarkDetector(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 17544)
	for i := range vals {
		if rng.Float64() < 0.15 {
			vals[i] = rng.Float64() * 100
		}
	}
	s := timeseries.MustNew(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC), vals)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(core.Detector{}.Detect(s, "TX", gtrends.TopicInternetOutage))
	}
	b.ReportMetric(float64(n), "spikes")
}

// ---- ablations ----

// BenchmarkAblationStitchEstimator compares the three inter-frame
// scaling-ratio estimators by reconstruction fidelity (correlation with
// ground truth) on piecewise-normalized noisy frames.
func BenchmarkAblationStitchEstimator(b *testing.B) {
	estimators := map[string]timeseries.RatioEstimator{
		"ratio-of-means":   timeseries.RatioOfMeans,
		"mean-of-ratios":   timeseries.MeanOfRatios,
		"median-of-ratios": timeseries.MedianOfRatios,
	}
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(9))
	truth := make([]float64, 8*168)
	for i := range truth {
		truth[i] = 3 + 2*math.Sin(float64(i)/24*2*math.Pi) + rng.Float64()
		if rng.Float64() < 0.01 {
			truth[i] += 60 * rng.Float64()
		}
	}
	truthSeries := timeseries.MustNew(start, truth)
	specs, err := timeseries.Partition(start, start.Add(time.Duration(len(truth))*time.Hour), 168, 24)
	if err != nil {
		b.Fatal(err)
	}
	makeFrames := func(noise *rand.Rand) []*timeseries.Series {
		var frames []*timeseries.Series
		for _, spec := range specs {
			vals := make([]float64, spec.Hours)
			off := int(spec.Start.Sub(start) / time.Hour)
			for i := range vals {
				v := truth[off+i] + noise.NormFloat64()*0.8
				if v < 0 {
					v = 0
				}
				vals[i] = v
			}
			frames = append(frames, timeseries.MustNew(spec.Start, vals).Renormalize())
		}
		return frames
	}
	for name, est := range estimators {
		b.Run(name, func(b *testing.B) {
			noise := rand.New(rand.NewSource(7))
			var corr float64
			for i := 0; i < b.N; i++ {
				got, err := timeseries.StitchAll(makeFrames(noise), est)
				if err != nil {
					b.Fatal(err)
				}
				corr, err = timeseries.Correlation(got, truthSeries)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(corr, "truth_correlation")
		})
	}
}

// BenchmarkAblationAveragingRounds measures how the number of averaging
// rounds affects agreement with a high-round reference detection.
func BenchmarkAblationAveragingRounds(b *testing.B) {
	from := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	cfg := scenario.DefaultConfig(4)
	cfg.Start, cfg.End = from, to
	world, err := scenario.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	run := func(rounds int, seed int64) []core.Spike {
		model := searchmodel.New(seed, world, searchmodel.Params{})
		fetcher := gtrends.EngineFetcher{Engine: gtrends.NewEngine(model, gtrends.Config{})}
		p := &core.Pipeline{Fetcher: fetcher, Cfg: core.PipelineConfig{
			MinRounds: rounds, MaxRounds: rounds,
		}}
		res, err := p.Run(context.Background(), "TX", gtrends.TopicInternetOutage, from, to)
		if err != nil {
			b.Fatal(err)
		}
		return res.Spikes
	}
	reference := run(12, 1)
	for _, rounds := range []int{1, 2, 6} {
		b.Run(map[int]string{1: "rounds=1", 2: "rounds=2", 6: "rounds=6"}[rounds], func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				sim = core.SpikeSetsSimilarity(run(rounds, 1), reference, 2*time.Hour)
			}
			b.ReportMetric(sim, "similarity_vs_ref")
		})
	}
}

// BenchmarkAblationEndRule sweeps the forward-walk stop fraction and
// reports the detected duration of a known 45 h outage.
func BenchmarkAblationEndRule(b *testing.B) {
	storm := &simworld.Event{
		ID: "storm", Name: "Winter storm", Kind: simworld.KindPower,
		Cause: simworld.CauseWinterStorm,
		Start: time.Date(2021, 2, 15, 8, 0, 0, 0, time.UTC), Duration: 45 * time.Hour,
		Impacts: []simworld.Impact{{State: "TX", Intensity: 2000}},
	}
	model := searchmodel.New(2, simworld.NewTimeline([]*simworld.Event{storm}), searchmodel.Params{})
	fetcher := gtrends.EngineFetcher{Engine: gtrends.NewEngine(model, gtrends.Config{})}
	from := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	for _, frac := range []float64{0.3, 0.5, 0.7} {
		name := map[float64]string{0.3: "frac=0.3", 0.5: "frac=0.5", 0.7: "frac=0.7"}[frac]
		b.Run(name, func(b *testing.B) {
			var dur float64
			for i := 0; i < b.N; i++ {
				p := &core.Pipeline{Fetcher: fetcher, Cfg: core.PipelineConfig{
					Detector: core.Detector{EndFraction: frac},
				}}
				res, err := p.Run(context.Background(), "TX", gtrends.TopicInternetOutage, from, to)
				if err != nil {
					b.Fatal(err)
				}
				var best core.Spike
				for _, sp := range res.Spikes {
					if sp.Rank == 1 {
						best = sp
					}
				}
				dur = best.Duration().Hours()
			}
			b.ReportMetric(dur, "storm_hours") // truth: 45
		})
	}
}

// BenchmarkAblationPrivacyThreshold sweeps the privacy rounding threshold
// and reports how many spikes survive in a small state — how much signal
// the rounding destroys.
func BenchmarkAblationPrivacyThreshold(b *testing.B) {
	from := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	cfg := scenario.DefaultConfig(6)
	cfg.Start, cfg.End = from, to
	world, err := scenario.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, threshold := range []int{1, 2, 4, 8} {
		name := map[int]string{1: "threshold=1", 2: "threshold=2", 4: "threshold=4", 8: "threshold=8"}[threshold]
		b.Run(name, func(b *testing.B) {
			var spikes float64
			for i := 0; i < b.N; i++ {
				model := searchmodel.New(6, world, searchmodel.Params{})
				engine := gtrends.NewEngine(model, gtrends.Config{PrivacyThreshold: threshold})
				p := &core.Pipeline{Fetcher: gtrends.EngineFetcher{Engine: engine}}
				res, err := p.Run(context.Background(), "WY", gtrends.TopicInternetOutage, from, to)
				if err != nil {
					b.Fatal(err)
				}
				spikes = float64(len(res.Spikes))
			}
			b.ReportMetric(spikes, "wy_spikes")
		})
	}
}

// ---- kernel micro-benchmarks (allocation-lean fold paths) ----

// benchStitchFrames builds the two-year weekly-frame shape of one
// state's crawl: ~105 renormalized 168 h frames with 24 h overlaps over
// 17544 hours, positive everywhere so every seam anchors.
func benchStitchFrames(b *testing.B) []*timeseries.Series {
	b.Helper()
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	specs, err := timeseries.Partition(start, start.Add(17544*time.Hour), 168, 24)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	frames := make([]*timeseries.Series, len(specs))
	for i, spec := range specs {
		vals := make([]float64, spec.Hours)
		off := float64(spec.Start.Sub(start) / time.Hour)
		for j := range vals {
			vals[j] = 5 + 3*math.Sin((off+float64(j))/24*2*math.Pi) + rng.Float64()
		}
		frames[i] = timeseries.MustNew(spec.Start, vals).Renormalize()
	}
	return frames
}

// BenchmarkStitchAll compares the legacy clone-per-seam stitch fold
// against the arena-backed StitchBuffer kernel on the two-year shape.
// The kernels are pinned byte-identical by the timeseries property
// tests; the benchmark exists for the allocs/op column.
func BenchmarkStitchAll(b *testing.B) {
	frames := benchStitchFrames(b)
	b.Run("ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := timeseries.StitchAllRef(frames, timeseries.RatioOfMeans); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kernel", func(b *testing.B) {
		sb := timeseries.NewStitchBuffer(nil)
		defer sb.Release()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := sb.StitchCounted(nil, frames, timeseries.RatioOfMeans); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTracedStitch measures tracing's overhead on the lean stitch
// path: the kernel stitch wrapped in a stage.stitch span exactly as the
// pipeline emits it, under a disabled context ("off": no tracer, spans
// are nil) and a recording tracer ("on"). The off case is gated against
// BenchmarkStitchAll/kernel's allocation count in BENCH_BASELINE.json —
// tracing that nobody enabled must cost zero allocs/op.
func BenchmarkTracedStitch(b *testing.B) {
	frames := benchStitchFrames(b)
	run := func(ctx context.Context) func(*testing.B) {
		return func(b *testing.B) {
			sb := timeseries.NewStitchBuffer(nil)
			defer sb.Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, span := trace.Start(ctx, "stage.stitch", trace.Int("frames", len(frames)))
				_, n, err := sb.StitchCounted(nil, frames, timeseries.RatioOfMeans)
				if err != nil {
					b.Fatal(err)
				}
				span.SetAttr(trace.Int("unanchored", n))
				span.End()
			}
		}
	}
	b.Run("off", run(context.Background()))
	tr := trace.New(trace.Config{Capacity: 64})
	ctx, root := tr.Root(context.Background(), "bench.traced_stitch")
	defer root.End()
	b.Run("on", run(ctx))
}

// BenchmarkAverage compares the allocating round-average against the
// destination-passing kernel on one frame's worth of convergence rounds
// (six 168 h series, the study's mean round count).
func BenchmarkAverage(b *testing.B) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(4))
	series := make([]*timeseries.Series, 6)
	for i := range series {
		vals := make([]float64, 168)
		for j := range vals {
			vals[j] = rng.Float64() * 100
		}
		series[i] = timeseries.MustNew(start, vals)
	}
	b.Run("ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := timeseries.AverageRef(series); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("into", func(b *testing.B) {
		dst := make([]float64, 168)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := timeseries.AverageInto(dst, series); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- engine cache benches ----

// stormFetcher returns a fresh engine fetcher over the seed storm
// scenario of BenchmarkPipelineStateMonth.
func stormFetcher(seed int64) gtrends.Fetcher {
	storm := &simworld.Event{
		ID: "storm", Name: "Winter storm", Kind: simworld.KindPower,
		Cause: simworld.CauseWinterStorm,
		Start: time.Date(2021, 2, 15, 8, 0, 0, 0, time.UTC), Duration: 45 * time.Hour,
		Impacts: []simworld.Impact{{State: "TX", Intensity: 2000}},
	}
	model := searchmodel.New(seed, simworld.NewTimeline([]*simworld.Event{storm}), searchmodel.Params{})
	return gtrends.EngineFetcher{Engine: gtrends.NewEngine(model, gtrends.Config{})}
}

// runCachedStateMonth is one fixed-round crawl of the storm month through
// the given cache.
func runCachedStateMonth(b *testing.B, fetcher gtrends.Fetcher, cache *FrameCache) *core.Result {
	b.Helper()
	from := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	p := &core.Pipeline{Fetcher: fetcher, Cfg: core.PipelineConfig{
		Cache: cache, MinRounds: 2, MaxRounds: 2,
	}}
	res, err := p.Run(context.Background(), "TX", gtrends.TopicInternetOutage, from, to)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkPipelineStateMonthColdCache crawls the storm month with an
// empty cache every iteration — every frame is sampled by the engine.
func BenchmarkPipelineStateMonthColdCache(b *testing.B) {
	fetcher := stormFetcher(1)
	b.ResetTimer()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = runCachedStateMonth(b, fetcher, NewFrameCache(0))
	}
	b.ReportMetric(float64(res.CacheMisses), "misses_per_run")
}

// BenchmarkPipelineStateMonthWarmCache crawls the same month through a
// cache populated once before timing — every frame is a hit, so the
// measured work is merge + stitch + detect only. The cold/warm ratio is
// the fetch stage's share of the pipeline.
func BenchmarkPipelineStateMonthWarmCache(b *testing.B) {
	fetcher := stormFetcher(1)
	cache := NewFrameCache(0)
	runCachedStateMonth(b, fetcher, cache) // populate
	b.ResetTimer()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = runCachedStateMonth(b, fetcher, cache)
	}
	b.ReportMetric(float64(res.CacheHits), "hits_per_run")
}

// BenchmarkStudyThroughput measures end-to-end study throughput on a
// small fixed scenario, in frames fetched per second of wall clock.
func BenchmarkStudyThroughput(b *testing.B) {
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)
	end := start.Add(8 * 7 * 24 * time.Hour)
	var frames uint64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		study, err := experiments.RunStudy(context.Background(), experiments.StudyConfig{
			Seed: 1, Start: start, End: end,
			States:         []State{"TX", "OK", "LA", "NM"},
			Scenario:       &scenario.Config{Seed: 1, Start: start, End: end},
			SkipAnnotation: true, SkipAnt: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		frames = study.TotalFrames()
		elapsed += study.Elapsed
	}
	if elapsed > 0 {
		b.ReportMetric(float64(frames)*float64(b.N)/elapsed.Seconds()/float64(b.N), "frames_per_sec")
	}
}
